//! Macro-op (native instruction) definitions and encoding-length model.

use crate::cc::Cc;
use crate::operand::{MemRef, Width};
use crate::reg::{Gpr, Xmm};
use std::fmt;

/// Maximum encoded length of any instruction, matching x86's 15-byte cap.
pub const MAX_INST_LEN: u32 = 15;

/// Scalar ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
        };
        f.write_str(s)
    }
}

/// Packed SSE-style vector operations over a 128-bit lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum VecOp {
    /// Packed add of 16 bytes (`paddb`).
    PAddB,
    /// Packed add of 8 words (`paddw`).
    PAddW,
    /// Packed add of 4 dwords (`paddd`).
    PAddD,
    /// Packed add of 2 qwords (`paddq`).
    PAddQ,
    /// Packed subtract of 16 bytes (`psubb`).
    PSubB,
    /// Packed subtract of 4 dwords (`psubd`).
    PSubD,
    /// Packed bitwise and (`pand`).
    PAnd,
    /// Packed bitwise or (`por`).
    POr,
    /// Packed bitwise xor (`pxor`).
    PXor,
    /// Packed multiply low of 8 words (`pmullw`).
    PMullW,
    /// Packed multiply low of 4 dwords (`pmulld`).
    PMullD,
    /// Packed single-precision float add (`addps`).
    AddPs,
    /// Packed single-precision float multiply (`mulps`).
    MulPs,
    /// Packed single-precision float subtract (`subps`).
    SubPs,
    /// Packed double-precision float add (`addpd`).
    AddPd,
    /// Packed double-precision float multiply (`mulpd`).
    MulPd,
}

impl VecOp {
    /// Element width in bytes of each packed lane.
    pub const fn element_bytes(self) -> u32 {
        match self {
            VecOp::PAddB | VecOp::PSubB => 1,
            VecOp::PAddW | VecOp::PMullW => 2,
            VecOp::PAddD
            | VecOp::PSubD
            | VecOp::PMullD
            | VecOp::AddPs
            | VecOp::MulPs
            | VecOp::SubPs => 4,
            VecOp::PAddQ | VecOp::AddPd | VecOp::MulPd | VecOp::PAnd | VecOp::POr | VecOp::PXor => {
                8
            }
        }
    }

    /// Number of packed elements in the 128-bit lane.
    pub const fn lanes(self) -> u32 {
        16 / self.element_bytes()
    }

    /// Whether the op is a floating-point vector op (longer scalar
    /// emulation and higher execution latency than packed-integer ops).
    pub const fn is_float(self) -> bool {
        matches!(
            self,
            VecOp::AddPs | VecOp::MulPs | VecOp::SubPs | VecOp::AddPd | VecOp::MulPd
        )
    }

    /// Whether the op is a multiply (higher latency/energy class).
    pub const fn is_multiply(self) -> bool {
        matches!(
            self,
            VecOp::PMullW | VecOp::PMullD | VecOp::MulPs | VecOp::MulPd
        )
    }
}

impl fmt::Display for VecOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VecOp::PAddB => "paddb",
            VecOp::PAddW => "paddw",
            VecOp::PAddD => "paddd",
            VecOp::PAddQ => "paddq",
            VecOp::PSubB => "psubb",
            VecOp::PSubD => "psubd",
            VecOp::PAnd => "pand",
            VecOp::POr => "por",
            VecOp::PXor => "pxor",
            VecOp::PMullW => "pmullw",
            VecOp::PMullD => "pmulld",
            VecOp::AddPs => "addps",
            VecOp::MulPs => "mulps",
            VecOp::SubPs => "subps",
            VecOp::AddPd => "addpd",
            VecOp::MulPd => "mulpd",
        };
        f.write_str(s)
    }
}

/// A register-or-immediate source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegImm {
    /// A GPR source.
    Reg(Gpr),
    /// An immediate source.
    Imm(i64),
}

impl RegImm {
    fn encoding_len(&self) -> u32 {
        match self {
            RegImm::Reg(_) => 0,
            RegImm::Imm(i) => imm_len(*i),
        }
    }
}

impl From<Gpr> for RegImm {
    fn from(r: Gpr) -> Self {
        RegImm::Reg(r)
    }
}

impl From<i64> for RegImm {
    fn from(i: i64) -> Self {
        RegImm::Imm(i)
    }
}

impl fmt::Display for RegImm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegImm::Reg(r) => write!(f, "{r}"),
            RegImm::Imm(i) => write!(f, "{i:#x}"),
        }
    }
}

fn imm_len(i: i64) -> u32 {
    if i8::try_from(i).is_ok() {
        1
    } else if i32::try_from(i).is_ok() {
        4
    } else {
        8
    }
}

/// A native mx86 macro-op.
///
/// Variants cover the instruction classes relevant to the front end:
/// scalar data movement, loads/stores, ALU ops (including load-op and
/// read-modify-write memory forms), multiplies and microsequenced divides,
/// control transfer, packed vector ops, and the system instructions used by
/// the CSD framework (`Wrmsr`, `Clflush`, `Rdtsc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// No-operation of an explicit encoded length (x86 has multi-byte NOPs).
    Nop {
        /// Encoded length in bytes (1..=15).
        len: u32,
    },
    /// `mov dst, src` — register-to-register move.
    MovRR {
        /// Destination register.
        dst: Gpr,
        /// Source register.
        src: Gpr,
    },
    /// `mov dst, imm` — load immediate.
    MovRI {
        /// Destination register.
        dst: Gpr,
        /// Immediate value.
        imm: i64,
    },
    /// `mov dst, [mem]` — scalar load.
    Load {
        /// Destination register.
        dst: Gpr,
        /// Memory source.
        mem: MemRef,
        /// Access width.
        width: Width,
    },
    /// `mov [mem], src` — scalar store.
    Store {
        /// Memory destination.
        mem: MemRef,
        /// Source register.
        src: Gpr,
        /// Access width.
        width: Width,
    },
    /// `lea dst, [mem]` — address computation without memory access.
    Lea {
        /// Destination register.
        dst: Gpr,
        /// Address expression.
        mem: MemRef,
    },
    /// `op dst, src` — ALU op with register destination.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and first source) register.
        dst: Gpr,
        /// Second source.
        src: RegImm,
    },
    /// `op dst, [mem]` — load-op: ALU with memory source.
    AluLoad {
        /// Operation.
        op: AluOp,
        /// Destination (and first source) register.
        dst: Gpr,
        /// Memory source.
        mem: MemRef,
        /// Access width.
        width: Width,
    },
    /// `op [mem], src` — read-modify-write ALU on memory.
    AluStore {
        /// Operation.
        op: AluOp,
        /// Memory destination (and first source).
        mem: MemRef,
        /// Second source.
        src: RegImm,
        /// Access width.
        width: Width,
    },
    /// `imul dst, src` — 64-bit multiply.
    Mul {
        /// Destination (and first source) register.
        dst: Gpr,
        /// Second source.
        src: RegImm,
    },
    /// `div src` — unsigned divide of RDX:RAX by `src`
    /// (microsequenced: expands to more than four micro-ops).
    Div {
        /// Divisor register.
        src: Gpr,
    },
    /// `cmp a, b` — compare (sets flags, no writeback).
    Cmp {
        /// First operand.
        a: Gpr,
        /// Second operand.
        b: RegImm,
    },
    /// `test a, b` — bitwise-and flags test.
    Test {
        /// First operand.
        a: Gpr,
        /// Second operand.
        b: RegImm,
    },
    /// `jmp target` — unconditional direct branch.
    Jmp {
        /// Absolute target address.
        target: u64,
    },
    /// `j<cc> target` — conditional direct branch.
    Jcc {
        /// Condition.
        cc: Cc,
        /// Absolute target address.
        target: u64,
    },
    /// `jmp reg` — indirect branch through a register.
    JmpInd {
        /// Register holding the target address.
        reg: Gpr,
    },
    /// `call target` — direct call (pushes return address).
    Call {
        /// Absolute target address.
        target: u64,
    },
    /// `ret` — return (pops return address).
    Ret,
    /// `push src`.
    Push {
        /// Source register.
        src: Gpr,
    },
    /// `pop dst`.
    Pop {
        /// Destination register.
        dst: Gpr,
    },
    /// `movdqa dst, [mem]` — 128-bit vector load.
    VLoad {
        /// Destination vector register.
        dst: Xmm,
        /// Memory source.
        mem: MemRef,
    },
    /// `movdqa [mem], src` — 128-bit vector store.
    VStore {
        /// Memory destination.
        mem: MemRef,
        /// Source vector register.
        src: Xmm,
    },
    /// `movdqa dst, src` — vector register move.
    VMovRR {
        /// Destination vector register.
        dst: Xmm,
        /// Source vector register.
        src: Xmm,
    },
    /// `op dst, src` — packed vector ALU op.
    VAlu {
        /// Operation.
        op: VecOp,
        /// Destination (and first source) vector register.
        dst: Xmm,
        /// Second source vector register.
        src: Xmm,
    },
    /// `op dst, [mem]` — packed vector ALU op with memory source.
    VAluLoad {
        /// Operation.
        op: VecOp,
        /// Destination (and first source) vector register.
        dst: Xmm,
        /// Memory source.
        mem: MemRef,
    },
    /// `movq dst, src` — move low 64 bits of an XMM register to a GPR.
    VMovToGpr {
        /// Destination GPR.
        dst: Gpr,
        /// Source vector register.
        src: Xmm,
    },
    /// `movq dst, src` — move a GPR into the low 64 bits of an XMM register
    /// (upper half preserved, like a `pinsrq dst, src, 0`).
    VMovFromGpr {
        /// Destination vector register.
        dst: Xmm,
        /// Source GPR.
        src: Gpr,
    },
    /// `clflush [mem]` — flush the cache line containing the address from
    /// the entire hierarchy.
    Clflush {
        /// Address whose line is flushed.
        mem: MemRef,
    },
    /// `rdtsc` — read the cycle counter into RAX.
    Rdtsc,
    /// `wrmsr msr, src` — write a model-specific register (privileged).
    Wrmsr {
        /// MSR number.
        msr: u32,
        /// Source register.
        src: Gpr,
    },
    /// `rdmsr dst, msr` — read a model-specific register (privileged).
    Rdmsr {
        /// Destination register.
        dst: Gpr,
        /// MSR number.
        msr: u32,
    },
    /// `hlt` — stop the core (ends simulation of this program).
    Halt,
}

impl Inst {
    /// Encoded length in bytes (deterministic model, 1..=15).
    ///
    /// The model mirrors x86 conventions: opcode + ModRM + optional SIB +
    /// displacement + immediate, REX-style prefix for high registers,
    /// 2-byte escape + prefix for vector ops.
    #[allow(clippy::len_without_is_empty)] // an instruction is never empty
    pub fn len(&self) -> u32 {
        let len = match *self {
            Inst::Nop { len } => len,
            Inst::MovRR { dst, src } => 2 + rex2(dst, src),
            Inst::MovRI { dst, imm } => 2 + rex1(dst) + imm_len(imm),
            Inst::Load { dst, mem, .. } | Inst::Lea { dst, mem } => {
                2 + rex1(dst) + mem.encoding_len()
            }
            Inst::Store { mem, src, .. } => 2 + rex1(src) + mem.encoding_len(),
            Inst::Alu { dst, src, .. } => 2 + rex1(dst) + src.encoding_len(),
            Inst::AluLoad { dst, mem, .. } => 2 + rex1(dst) + mem.encoding_len(),
            Inst::AluStore { mem, src, .. } => 2 + mem.encoding_len() + src.encoding_len(),
            Inst::Mul { dst, src } => 3 + rex1(dst) + src.encoding_len(),
            Inst::Div { src } => 2 + rex1(src),
            Inst::Cmp { a, b } | Inst::Test { a, b } => 2 + rex1(a) + b.encoding_len(),
            Inst::Jmp { .. } => 5,
            Inst::Jcc { .. } => 6,
            Inst::JmpInd { reg } => 2 + rex1(reg),
            Inst::Call { .. } => 5,
            Inst::Ret => 1,
            Inst::Push { src } => 1 + rex1(src),
            Inst::Pop { dst } => 1 + rex1(dst),
            Inst::VLoad { mem, .. } | Inst::VStore { mem, .. } => 4 + mem.encoding_len(),
            Inst::VMovRR { .. } => 4,
            Inst::VAlu { .. } => 4,
            Inst::VAluLoad { mem, .. } => 4 + mem.encoding_len(),
            Inst::VMovToGpr { .. } | Inst::VMovFromGpr { .. } => 4,
            Inst::Clflush { mem } => 3 + mem.encoding_len(),
            Inst::Rdtsc => 2,
            Inst::Wrmsr { .. } | Inst::Rdmsr { .. } => 6,
            Inst::Halt => 1,
        };
        len.min(MAX_INST_LEN)
    }

    /// Whether this macro-op reads memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::AluLoad { .. }
                | Inst::AluStore { .. }
                | Inst::Pop { .. }
                | Inst::Ret
                | Inst::VLoad { .. }
                | Inst::VAluLoad { .. }
        )
    }

    /// Whether this macro-op writes memory.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::AluStore { .. }
                | Inst::Push { .. }
                | Inst::Call { .. }
                | Inst::VStore { .. }
        )
    }

    /// Whether this macro-op is a control transfer.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::JmpInd { .. }
                | Inst::Call { .. }
                | Inst::Ret
        )
    }

    /// Whether this macro-op is an unconditional control transfer.
    pub fn is_unconditional_branch(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::JmpInd { .. } | Inst::Call { .. } | Inst::Ret
        )
    }

    /// Whether this macro-op uses the vector (XMM) register file.
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Inst::VLoad { .. }
                | Inst::VStore { .. }
                | Inst::VMovRR { .. }
                | Inst::VAlu { .. }
                | Inst::VAluLoad { .. }
                | Inst::VMovToGpr { .. }
                | Inst::VMovFromGpr { .. }
        )
    }

    /// Whether this macro-op writes flags.
    pub fn writes_flags(&self) -> bool {
        matches!(
            self,
            Inst::Alu { .. }
                | Inst::AluLoad { .. }
                | Inst::AluStore { .. }
                | Inst::Mul { .. }
                | Inst::Div { .. }
                | Inst::Cmp { .. }
                | Inst::Test { .. }
        )
    }

    /// The direct branch target, if this is a direct control transfer.
    pub fn direct_target(&self) -> Option<u64> {
        match *self {
            Inst::Jmp { target } | Inst::Jcc { target, .. } | Inst::Call { target } => Some(target),
            _ => None,
        }
    }
}

fn rex1(r: Gpr) -> u32 {
    u32::from(r.needs_rex())
}

fn rex2(a: Gpr, b: Gpr) -> u32 {
    u32::from(a.needs_rex() || b.needs_rex())
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop { len } => write!(f, "nop{len}"),
            Inst::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::MovRI { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Inst::Load { dst, mem, width } => write!(f, "mov {dst}, {width} {mem}"),
            Inst::Store { mem, src, width } => write!(f, "mov {width} {mem}, {src}"),
            Inst::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Inst::Alu { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Inst::AluLoad {
                op,
                dst,
                mem,
                width,
            } => write!(f, "{op} {dst}, {width} {mem}"),
            Inst::AluStore {
                op,
                mem,
                src,
                width,
            } => write!(f, "{op} {width} {mem}, {src}"),
            Inst::Mul { dst, src } => write!(f, "imul {dst}, {src}"),
            Inst::Div { src } => write!(f, "div {src}"),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::Test { a, b } => write!(f, "test {a}, {b}"),
            Inst::Jmp { target } => write!(f, "jmp {target:#x}"),
            Inst::Jcc { cc, target } => write!(f, "j{cc} {target:#x}"),
            Inst::JmpInd { reg } => write!(f, "jmp {reg}"),
            Inst::Call { target } => write!(f, "call {target:#x}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::VLoad { dst, mem } => write!(f, "movdqa {dst}, {mem}"),
            Inst::VStore { mem, src } => write!(f, "movdqa {mem}, {src}"),
            Inst::VMovRR { dst, src } => write!(f, "movdqa {dst}, {src}"),
            Inst::VAlu { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Inst::VAluLoad { op, dst, mem } => write!(f, "{op} {dst}, {mem}"),
            Inst::VMovToGpr { dst, src } => write!(f, "movq {dst}, {src}"),
            Inst::VMovFromGpr { dst, src } => write!(f, "movq {dst}, {src}"),
            Inst::Clflush { mem } => write!(f, "clflush {mem}"),
            Inst::Rdtsc => write!(f, "rdtsc"),
            Inst::Wrmsr { msr, src } => write!(f, "wrmsr {msr:#x}, {src}"),
            Inst::Rdmsr { dst, msr } => write!(f, "rdmsr {dst}, {msr:#x}"),
            Inst::Halt => write!(f, "hlt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Scale;

    #[test]
    fn lengths_within_x86_bounds() {
        let insts = [
            Inst::Nop { len: 1 },
            Inst::MovRR {
                dst: Gpr::Rax,
                src: Gpr::R15,
            },
            Inst::MovRI {
                dst: Gpr::Rax,
                imm: i64::MAX,
            },
            Inst::Load {
                dst: Gpr::R9,
                mem: MemRef::base_index(Gpr::Rax, Gpr::Rcx, Scale::S8).with_disp(0x1234_5678),
                width: Width::B8,
            },
            Inst::Jcc {
                cc: Cc::Lt,
                target: 0,
            },
            Inst::Div { src: Gpr::Rbx },
            Inst::VAluLoad {
                op: VecOp::PAddB,
                dst: Xmm::new(3),
                mem: MemRef::abs(0x1000_0000),
            },
        ];
        for i in insts {
            assert!(
                (1..=MAX_INST_LEN).contains(&i.len()),
                "{i}: len {}",
                i.len()
            );
        }
    }

    #[test]
    fn rex_prefix_lengthens_encoding() {
        let lo = Inst::MovRR {
            dst: Gpr::Rax,
            src: Gpr::Rbx,
        };
        let hi = Inst::MovRR {
            dst: Gpr::Rax,
            src: Gpr::R12,
        };
        assert_eq!(hi.len(), lo.len() + 1);
    }

    #[test]
    fn immediate_size_affects_length() {
        let short = Inst::MovRI {
            dst: Gpr::Rax,
            imm: 1,
        };
        let mid = Inst::MovRI {
            dst: Gpr::Rax,
            imm: 0x1000,
        };
        let long = Inst::MovRI {
            dst: Gpr::Rax,
            imm: 0x1_0000_0000,
        };
        assert!(short.len() < mid.len());
        assert!(mid.len() < long.len());
    }

    #[test]
    fn classification() {
        let ld = Inst::Load {
            dst: Gpr::Rax,
            mem: MemRef::abs(0),
            width: Width::B8,
        };
        assert!(ld.is_load() && !ld.is_store() && !ld.is_branch() && !ld.is_vector());

        let rmw = Inst::AluStore {
            op: AluOp::Add,
            mem: MemRef::abs(0),
            src: RegImm::Imm(1),
            width: Width::B8,
        };
        assert!(rmw.is_load() && rmw.is_store());

        let call = Inst::Call { target: 0x10 };
        assert!(call.is_branch() && call.is_store() && call.is_unconditional_branch());

        let jcc = Inst::Jcc {
            cc: Cc::Eq,
            target: 0x10,
        };
        assert!(jcc.is_branch() && !jcc.is_unconditional_branch());
        assert_eq!(jcc.direct_target(), Some(0x10));

        let v = Inst::VAlu {
            op: VecOp::PXor,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        };
        assert!(v.is_vector());
    }

    #[test]
    fn vecop_lanes() {
        assert_eq!(VecOp::PAddB.lanes(), 16);
        assert_eq!(VecOp::PAddW.lanes(), 8);
        assert_eq!(VecOp::PAddD.lanes(), 4);
        assert_eq!(VecOp::PAddQ.lanes(), 2);
        assert!(VecOp::MulPs.is_float() && VecOp::MulPs.is_multiply());
    }

    #[test]
    fn display_smoke() {
        let i = Inst::AluLoad {
            op: AluOp::Xor,
            dst: Gpr::Rax,
            mem: MemRef::base(Gpr::Rbx),
            width: Width::B4,
        };
        assert_eq!(i.to_string(), "xor rax, dword [rbx]");
    }
}
