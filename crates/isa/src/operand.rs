//! Memory operands and access widths.

use crate::reg::Gpr;
use std::fmt;

/// Scale factor for the index register of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// `index * 1`
    #[default]
    S1,
    /// `index * 2`
    S2,
    /// `index * 4`
    S4,
    /// `index * 8`
    S8,
}

impl Scale {
    /// The numeric multiplier.
    #[inline]
    pub const fn factor(self) -> u64 {
        match self {
            Scale::S1 => 1,
            Scale::S2 => 2,
            Scale::S4 => 4,
            Scale::S8 => 8,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.factor())
    }
}

/// The size of a scalar memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    #[default]
    B8,
    /// 16 bytes (vector).
    B16,
}

impl Width {
    /// Access size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
            Width::B16 => 16,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Width::B1 => "byte",
            Width::B2 => "word",
            Width::B4 => "dword",
            Width::B8 => "qword",
            Width::B16 => "xmmword",
        };
        f.write_str(s)
    }
}

/// A `base + index*scale + disp` memory reference.
///
/// ```
/// use mx86_isa::{MemRef, Gpr, Scale};
/// let m = MemRef::base_index(Gpr::Rax, Gpr::Rcx, Scale::S4).with_disp(0x40);
/// assert_eq!(m.to_string(), "[rax + rcx*4 + 0x40]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Gpr>,
    /// Index register and scale, if any.
    pub index: Option<(Gpr, Scale)>,
    /// Constant displacement.
    pub disp: i64,
}

impl MemRef {
    /// An absolute reference: `[disp]`.
    #[inline]
    pub const fn abs(disp: i64) -> MemRef {
        MemRef {
            base: None,
            index: None,
            disp,
        }
    }

    /// A base-register reference: `[base]`.
    #[inline]
    pub const fn base(base: Gpr) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// A base+index reference: `[base + index*scale]`.
    #[inline]
    pub const fn base_index(base: Gpr, index: Gpr, scale: Scale) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some((index, scale)),
            disp: 0,
        }
    }

    /// An index-only reference: `[index*scale + disp]`.
    #[inline]
    pub const fn index_disp(index: Gpr, scale: Scale, disp: i64) -> MemRef {
        MemRef {
            base: None,
            index: Some((index, scale)),
            disp,
        }
    }

    /// Returns a copy with the displacement set to `disp`.
    #[inline]
    pub const fn with_disp(mut self, disp: i64) -> MemRef {
        self.disp = disp;
        self
    }

    /// Number of encoding bytes contributed by this operand
    /// (ModRM-style displacement + optional SIB byte).
    pub fn encoding_len(&self) -> u32 {
        let sib = u32::from(self.index.is_some());
        let disp = if self.disp == 0 && self.base.is_some() {
            0
        } else if i8::try_from(self.disp).is_ok() {
            1
        } else {
            4
        };
        sib + disp
    }

    /// Computes the effective address given resolved register values.
    ///
    /// `read_gpr` supplies the current value of any registers used.
    pub fn effective_address(&self, mut read_gpr: impl FnMut(Gpr) -> u64) -> u64 {
        let mut addr = self.disp as u64;
        if let Some(b) = self.base {
            addr = addr.wrapping_add(read_gpr(b));
        }
        if let Some((i, s)) = self.index {
            addr = addr.wrapping_add(read_gpr(i).wrapping_mul(s.factor()));
        }
        addr
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp >= 0 {
                    write!(f, " + {:#x}", self.disp)?;
                } else {
                    write!(f, " - {:#x}", -self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_address_combines_parts() {
        let m = MemRef::base_index(Gpr::Rax, Gpr::Rcx, Scale::S8).with_disp(-8);
        let ea = m.effective_address(|r| match r {
            Gpr::Rax => 0x1000,
            Gpr::Rcx => 3,
            _ => unreachable!(),
        });
        assert_eq!(ea, 0x1000 + 24 - 8);
    }

    #[test]
    fn encoding_len_rules() {
        assert_eq!(MemRef::base(Gpr::Rax).encoding_len(), 0);
        assert_eq!(MemRef::base(Gpr::Rax).with_disp(4).encoding_len(), 1);
        assert_eq!(MemRef::base(Gpr::Rax).with_disp(400).encoding_len(), 4);
        assert_eq!(
            MemRef::base_index(Gpr::Rax, Gpr::Rcx, Scale::S4).encoding_len(),
            1
        );
        // Absolute (no base) always carries a displacement.
        assert_eq!(MemRef::abs(0).encoding_len(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MemRef::abs(0x10).to_string(), "[0x10]");
        assert_eq!(MemRef::base(Gpr::Rbx).to_string(), "[rbx]");
        assert_eq!(
            MemRef::base(Gpr::Rbx).with_disp(-4).to_string(),
            "[rbx - 0x4]"
        );
        assert_eq!(
            MemRef::index_disp(Gpr::Rdx, Scale::S2, 8).to_string(),
            "[rdx*2 + 0x8]"
        );
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B16.bytes(), 16);
    }
}
