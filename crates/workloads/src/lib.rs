//! # csd-workloads — SPEC-like synthetic workloads
//!
//! The paper evaluates selective devectorization on SPEC CPU2006, which is
//! proprietary; this crate substitutes *parameterized synthetic workloads*
//! named for the benchmarks the paper reports, each with a calibrated
//! vector-intensity and phase profile matching the paper's
//! characterization (Figures 15/16):
//!
//! - `astar`/`gcc`/`gobmk`/`sjeng`: low-but-nonzero vector activity — CSD
//!   keeps the VPU off essentially always;
//! - `bwaves`/`milc`: bursty float-vector phases that repeatedly force the
//!   unit awake (devectorized while powering on);
//! - `namd`: heavy, sustained vector activity;
//! - `omnetpp`: a trickle of isolated vector ops executed almost entirely
//!   in gated mode;
//! - `gamess`/`zeusmp`: moderate phases gated roughly half the time.
//!
//! What matters to the study is the *temporal pattern of vector vs scalar
//! µops* and memory behavior, which the generator controls directly (see
//! `DESIGN.md`). Programs are deterministic loop nests: each "phase" is a
//! scalar inner loop followed by an optional vector inner loop, with
//! per-phase trip counts drawn from a seeded PRNG around the profile's
//! duty cycle.

#![warn(missing_docs)]

use csd_pipeline::Core;
use mx86_isa::{AluOp, Assembler, Cc, Gpr, MemRef, Program, Scale, VecOp, Xmm};

/// Vector-operation complexity class of a workload's vector phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecMix {
    /// Packed integer add/xor (cheap to scalarize).
    SimpleInt,
    /// Packed multiplies included.
    IntMul,
    /// Packed single-precision float.
    Float,
}

/// A workload's profile — the calibrated knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of phase pairs in the static code (before the outer repeat).
    pub phases: u32,
    /// Scalar inner-loop trip count per phase.
    pub scalar_trips: u32,
    /// Mean vector inner-loop trip count for *active* phases.
    pub vector_trips: u32,
    /// Fraction of phases with any vector activity.
    pub vector_duty: f64,
    /// Vector op complexity.
    pub mix: VecMix,
    /// Emit one isolated vector op every `sprinkle` scalar-loop
    /// iterations (0 = none). This models the paper's *intermittent*
    /// vector activity whose idle intervals are too short for
    /// conventional gating to win.
    pub sprinkle: u32,
    /// Outer repetitions of the whole phase sequence.
    pub repeats: u32,
    /// PRNG seed for per-phase variation.
    pub seed: u64,
}

/// The ten-benchmark suite used by the devectorization figures.
pub fn specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "astar",
            phases: 8,
            scalar_trips: 160,
            vector_trips: 2,
            vector_duty: 0.0,
            mix: VecMix::SimpleInt,
            sprinkle: 64,
            repeats: 14,
            seed: 11,
        },
        WorkloadSpec {
            name: "bwaves",
            phases: 8,
            scalar_trips: 60,
            vector_trips: 40,
            vector_duty: 0.5,
            mix: VecMix::Float,
            sprinkle: 48,
            repeats: 12,
            seed: 22,
        },
        WorkloadSpec {
            name: "gamess",
            phases: 8,
            scalar_trips: 100,
            vector_trips: 25,
            vector_duty: 0.3,
            mix: VecMix::IntMul,
            sprinkle: 32,
            repeats: 12,
            seed: 33,
        },
        WorkloadSpec {
            name: "gcc",
            phases: 8,
            scalar_trips: 150,
            vector_trips: 2,
            vector_duty: 0.0,
            mix: VecMix::SimpleInt,
            sprinkle: 80,
            repeats: 14,
            seed: 44,
        },
        WorkloadSpec {
            name: "gobmk",
            phases: 8,
            scalar_trips: 150,
            vector_trips: 3,
            vector_duty: 0.0,
            mix: VecMix::SimpleInt,
            sprinkle: 64,
            repeats: 14,
            seed: 55,
        },
        WorkloadSpec {
            name: "milc",
            phases: 8,
            scalar_trips: 70,
            vector_trips: 35,
            vector_duty: 0.45,
            mix: VecMix::Float,
            sprinkle: 40,
            repeats: 12,
            seed: 66,
        },
        WorkloadSpec {
            name: "namd",
            phases: 8,
            scalar_trips: 40,
            vector_trips: 60,
            vector_duty: 0.85,
            mix: VecMix::Float,
            sprinkle: 48,
            repeats: 12,
            seed: 77,
        },
        WorkloadSpec {
            name: "omnetpp",
            phases: 8,
            scalar_trips: 140,
            vector_trips: 4,
            vector_duty: 0.0,
            mix: VecMix::SimpleInt,
            sprinkle: 24,
            repeats: 14,
            seed: 88,
        },
        WorkloadSpec {
            name: "sjeng",
            phases: 8,
            scalar_trips: 160,
            vector_trips: 2,
            vector_duty: 0.0,
            mix: VecMix::SimpleInt,
            sprinkle: 64,
            repeats: 14,
            seed: 99,
        },
        WorkloadSpec {
            name: "zeusmp",
            phases: 8,
            scalar_trips: 90,
            vector_trips: 20,
            vector_duty: 0.35,
            mix: VecMix::IntMul,
            sprinkle: 32,
            repeats: 12,
            seed: 110,
        },
    ]
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Base of the workload's data arrays.
const DATA_BASE: u64 = 0x10_0000;
/// Bytes of array data the generator initializes.
const DATA_LEN: u64 = 64 * 1024;

/// A generated workload: a program plus its data initialization.
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    program: Program,
}

impl Workload {
    /// Generates the workload at scale 1.0 (≈100–300 k dynamic
    /// instructions, depending on the profile).
    pub fn new(spec: WorkloadSpec) -> Workload {
        Workload::with_scale(spec, 1.0)
    }

    /// Generates with the outer repeat count scaled by `scale` (benches
    /// use smaller scales; longer runs amortize warm-up further).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_scale(mut spec: WorkloadSpec, scale: f64) -> Workload {
        assert!(scale > 0.0, "scale must be positive");
        spec.repeats = ((f64::from(spec.repeats) * scale).round() as u32).max(1);
        let program = generate(&spec);
        Workload { spec, program }
    }

    /// The profile this workload was generated from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        self.spec.name
    }

    /// The generated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Initializes the workload's data arrays.
    pub fn install(&self, core: &mut Core) {
        let mut seed = self.spec.seed ^ 0xDA7A;
        let mut addr = DATA_BASE;
        while addr < DATA_BASE + DATA_LEN {
            core.mem.write_le(addr, 8, splitmix(&mut seed));
            addr += 8;
        }
    }

    /// The suite entry for `name`, if it exists.
    pub fn by_name(name: &str) -> Option<Workload> {
        specs()
            .into_iter()
            .find(|s| s.name == name)
            .map(Workload::new)
    }
}

/// Builds the full suite at the given scale.
pub fn suite(scale: f64) -> Vec<Workload> {
    specs()
        .into_iter()
        .map(|s| Workload::with_scale(s, scale))
        .collect()
}

fn generate(spec: &WorkloadSpec) -> Program {
    let mut a = Assembler::new(0x1000);
    let mut rng = spec.seed;
    a.symbol("entry");
    a.mov_ri(Gpr::Rsp, 0x9_0000);
    a.mov_ri(Gpr::Rbp, DATA_BASE as i64); // array base
    a.mov_ri(Gpr::R15, i64::from(spec.repeats)); // outer counter
                                                 // Seed vector registers for the sprinkled ops.
    a.vload(Xmm::new(4), MemRef::base(Gpr::Rbp));
    a.vload(Xmm::new(5), MemRef::base(Gpr::Rbp).with_disp(16));
    a.mov_ri(Gpr::R14, 0); // sprinkle counter

    let outer = a.fresh_label();
    a.bind(outer).expect("fresh outer label");

    // Stratified phase activation: exactly round(duty * phases) vector
    // phases, rotated by the seed so benchmarks differ in placement.
    let active_count = (spec.vector_duty * f64::from(spec.phases)).round() as u32;
    let rotation = (splitmix(&mut rng) % u64::from(spec.phases.max(1))) as u32;
    for phase in 0..spec.phases {
        emit_scalar_phase(&mut a, spec, phase, &mut rng);
        let active = (phase + rotation) % spec.phases < active_count;
        if active {
            let jitter = (splitmix(&mut rng) % u64::from(spec.vector_trips.max(1))) as u32 / 2;
            let trips = spec.vector_trips.saturating_sub(jitter).max(1);
            emit_vector_phase(&mut a, spec, phase, trips, &mut rng);
        }
    }

    a.alu_ri(AluOp::Sub, Gpr::R15, 1);
    a.jcc(Cc::Ne, outer);
    a.halt();
    a.finish().expect("workload assembles")
}

/// A scalar phase: pointer-striding loads, ALU chains, stores, and a
/// data-dependent branch to keep the predictor honest.
fn emit_scalar_phase(a: &mut Assembler, spec: &WorkloadSpec, phase: u32, rng: &mut u64) {
    let top = a.fresh_label();
    let skip = a.fresh_label();
    let stride = 8 + 8 * (splitmix(rng) % 7) as i64;
    let offset = (splitmix(rng) % (DATA_LEN / 2)) as i64 & !7;

    a.mov_ri(Gpr::Rcx, i64::from(spec.scalar_trips));
    a.mov_ri(Gpr::Rsi, offset);
    a.bind(top).expect("fresh scalar label");
    a.load(Gpr::Rax, MemRef::base_index(Gpr::Rbp, Gpr::Rsi, Scale::S1));
    a.alu_ri(AluOp::Add, Gpr::Rax, i64::from(phase) + 1);
    a.mul_ri(Gpr::Rdx, 0x9E37_79B9);
    a.alu_rr(AluOp::Xor, Gpr::Rdx, Gpr::Rax);
    a.test_ri(Gpr::Rdx, 0x10);
    a.jcc(Cc::Eq, skip);
    a.alu_ri(AluOp::Add, Gpr::Rbx, 1);
    a.bind(skip).expect("fresh skip label");
    a.store(
        MemRef::base_index(Gpr::Rbp, Gpr::Rsi, Scale::S1).with_disp(0x8000),
        Gpr::Rax,
    );
    // Intermittent vector activity: one isolated packed op every
    // `sprinkle` iterations.
    if spec.sprinkle > 0 {
        let no_vec = a.fresh_label();
        let sprinkle_op = match spec.mix {
            VecMix::SimpleInt => VecOp::PAddD,
            VecMix::IntMul => VecOp::PAddD,
            VecMix::Float => VecOp::AddPs,
        };
        a.alu_ri(AluOp::Add, Gpr::R14, 1);
        a.test_ri(Gpr::R14, i64::from(spec.sprinkle.next_power_of_two() - 1));
        a.jcc(Cc::Ne, no_vec);
        a.valu(sprinkle_op, Xmm::new(4), Xmm::new(5));
        a.bind(no_vec).expect("fresh sprinkle label");
    }
    a.alu_ri(AluOp::Add, Gpr::Rsi, stride);
    a.alu_ri(AluOp::And, Gpr::Rsi, (DATA_LEN / 2 - 1) as i64 & !7);
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ne, top);
}

/// A vector phase: streaming vector loads, packed compute, vector stores.
fn emit_vector_phase(
    a: &mut Assembler,
    spec: &WorkloadSpec,
    phase: u32,
    trips: u32,
    rng: &mut u64,
) {
    let top = a.fresh_label();
    let ops: &[VecOp] = match spec.mix {
        VecMix::SimpleInt => &[VecOp::PAddD, VecOp::PXor, VecOp::PAddQ],
        VecMix::IntMul => &[VecOp::PAddD, VecOp::PMullW, VecOp::PXor],
        VecMix::Float => &[VecOp::AddPs, VecOp::MulPs, VecOp::SubPs],
    };
    let offset = (splitmix(rng) % (DATA_LEN / 2)) as i64 & !15;

    a.mov_ri(Gpr::Rcx, i64::from(trips));
    a.mov_ri(Gpr::Rdi, offset);
    a.bind(top).expect("fresh vector label");
    a.vload(
        Xmm::new(0),
        MemRef::base_index(Gpr::Rbp, Gpr::Rdi, Scale::S1),
    );
    a.vload(
        Xmm::new(1),
        MemRef::base_index(Gpr::Rbp, Gpr::Rdi, Scale::S1).with_disp(16),
    );
    for (i, &op) in ops.iter().enumerate() {
        a.valu(op, Xmm::new((i % 2) as u8), Xmm::new(((i + 1) % 3) as u8));
    }
    a.valu_load(
        ops[(phase as usize) % ops.len()],
        Xmm::new(2),
        MemRef::base_index(Gpr::Rbp, Gpr::Rdi, Scale::S1).with_disp(32),
    );
    a.vstore(
        MemRef::base_index(Gpr::Rbp, Gpr::Rdi, Scale::S1).with_disp(0x8000),
        Xmm::new(0),
    );
    a.alu_ri(AluOp::Add, Gpr::Rdi, 48);
    a.alu_ri(AluOp::And, Gpr::Rdi, (DATA_LEN / 2 - 1) as i64 & !15);
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ne, top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd::{CsdConfig, VpuPolicy};
    use csd_pipeline::{CoreConfig, SimMode, StepOutcome};

    fn run(w: &Workload, policy: VpuPolicy) -> Core {
        let csd_cfg = CsdConfig {
            vpu_policy: policy,
            ..CsdConfig::default()
        };
        let mut core = Core::new(
            CoreConfig::default(),
            csd_cfg,
            w.program().clone(),
            SimMode::Cycle,
        );
        w.install(&mut core);
        assert_eq!(core.run(20_000_000), StepOutcome::Halted, "{}", w.name());
        core
    }

    #[test]
    fn suite_has_ten_distinct_benchmarks() {
        let s = specs();
        assert_eq!(s.len(), 10);
        let mut names: Vec<_> = s.iter().map(|x| x.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn workloads_halt_and_do_work() {
        for w in suite(0.1) {
            let core = run(&w, VpuPolicy::AlwaysOn);
            assert!(
                core.stats().insts > 1_000,
                "{}: {}",
                w.name(),
                core.stats().insts
            );
        }
    }

    #[test]
    fn vector_intensity_orders_as_characterized() {
        let vec_share = |name: &str| {
            let w =
                Workload::with_scale(specs().into_iter().find(|s| s.name == name).unwrap(), 0.2);
            let core = run(&w, VpuPolicy::AlwaysOn);
            core.stats().vpu_uops as f64 / core.stats().uops as f64
        };
        let namd = vec_share("namd");
        let gcc = vec_share("gcc");
        let bwaves = vec_share("bwaves");
        assert!(namd > bwaves, "namd {namd} > bwaves {bwaves}");
        assert!(bwaves > gcc, "bwaves {bwaves} > gcc {gcc}");
        assert!(gcc < 0.02, "gcc is essentially scalar: {gcc}");
    }

    #[test]
    fn results_are_policy_invariant() {
        // Devectorization must not change architectural results.
        let w = Workload::with_scale(
            specs().into_iter().find(|s| s.name == "gamess").unwrap(),
            0.1,
        );
        let on = run(&w, VpuPolicy::AlwaysOn);
        let devec = run(&w, VpuPolicy::default());
        assert_eq!(on.state.gprs, devec.state.gprs);
        assert_eq!(on.state.xmms, devec.state.xmms);
    }

    #[test]
    fn low_vector_workloads_stay_gated_under_csd() {
        let w = Workload::with_scale(
            specs().into_iter().find(|s| s.name == "sjeng").unwrap(),
            0.1,
        );
        let core = run(&w, VpuPolicy::default());
        let frac = core.engine().gate().stats().gated_fraction();
        assert!(frac > 0.8, "sjeng should be gated nearly always: {frac}");
    }

    #[test]
    fn deterministic_generation() {
        let a = Workload::by_name("milc").unwrap();
        let b = Workload::by_name("milc").unwrap();
        assert_eq!(a.program().len(), b.program().len());
        assert_eq!(a.program().end_addr(), b.program().end_addr());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = Workload::with_scale(specs()[0], 0.0);
    }
}
