//! Micro-op format.

use crate::ureg::UReg;
use mx86_isa::{AluOp, Cc, Scale, VecOp, Width};
use std::fmt;

/// A memory operand at the micro-op level.
///
/// Unlike the macro-op [`mx86_isa::MemRef`], the base and index may be
/// decoder-internal temporaries — decoy loads address sensitive ranges
/// through temporaries so no architectural register is disturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UMem {
    /// Base register, if any.
    pub base: Option<UReg>,
    /// Index register and scale, if any.
    pub index: Option<(UReg, Scale)>,
    /// Constant displacement.
    pub disp: i64,
    /// Access width.
    pub width: Width,
}

impl UMem {
    /// An absolute address operand.
    pub const fn abs(addr: u64, width: Width) -> UMem {
        UMem {
            base: None,
            index: None,
            disp: addr as i64,
            width,
        }
    }

    /// A base-register operand.
    pub const fn base(base: UReg, width: Width) -> UMem {
        UMem {
            base: Some(base),
            index: None,
            disp: 0,
            width,
        }
    }

    /// A base + displacement operand.
    pub const fn base_disp(base: UReg, disp: i64, width: Width) -> UMem {
        UMem {
            base: Some(base),
            index: None,
            disp,
            width,
        }
    }

    /// Converts a macro-op memory operand.
    pub fn from_mem(m: mx86_isa::MemRef, width: Width) -> UMem {
        UMem {
            base: m.base.map(UReg::Gpr),
            index: m.index.map(|(r, s)| (UReg::Gpr(r), s)),
            disp: m.disp,
            width,
        }
    }

    /// Computes the effective address given a register-read closure.
    pub fn effective_address(&self, mut read: impl FnMut(UReg) -> u64) -> u64 {
        let mut addr = self.disp as u64;
        if let Some(b) = self.base {
            addr = addr.wrapping_add(read(b));
        }
        if let Some((i, s)) = self.index {
            addr = addr.wrapping_add(read(i).wrapping_mul(s.factor()));
        }
        addr
    }
}

impl fmt::Display for UMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                write!(f, " + {:#x}", self.disp)?;
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// Which cache a decoy micro-op targets.
///
/// Stealth-mode decoys sweeping a *data* decoy range load through the L1D
/// path; decoys sweeping an *instruction* range are fetch-touch micro-ops
/// that load the target line through the L1I path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoyTarget {
    /// Load through the data-cache path.
    Data,
    /// Touch through the instruction-cache path.
    Inst,
}

/// Scalar floating-point operation (used by devectorized float flows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FOp {
    /// Floating add.
    Add,
    /// Floating subtract.
    Sub,
    /// Floating multiply.
    Mul,
}

/// Scalar floating-point operand width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FWidth {
    /// Single precision (f32 bit pattern in the low 32 bits).
    S,
    /// Double precision (f64 bit pattern).
    D,
}

/// The operation performed by a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// No operation (also used as a microsequencer slot).
    Nop,
    /// `dst ← src1` register move.
    Mov,
    /// `dst ← imm`.
    MovImm,
    /// `dst ← src1 op src2|imm`; writes flags. A `dst` of `None` is a
    /// compare/test (flags only).
    Alu(AluOp),
    /// `dst ← src1 * src2|imm`; writes flags.
    Mul,
    /// Scalar float op on GPR/temp bit patterns:
    /// `dst ← src1 op src2` (no flags).
    FAlu(FOp, FWidth),
    /// Divide step: `dst ← src1 / src2` (quotient). Microsequenced.
    DivQ,
    /// Divide step: `dst ← src1 % src2` (remainder). Microsequenced.
    DivR,
    /// `dst ← [mem]` scalar load.
    Ld,
    /// `[mem] ← src1` scalar store.
    St,
    /// `dst ← &mem` address generation without access.
    Lea,
    /// Conditional branch to `imm` (absolute); reads flags.
    Br(Cc),
    /// Unconditional branch to `imm` (absolute).
    JmpImm,
    /// Unconditional branch to the address in `src1`.
    JmpReg,
    /// Push `imm` (used for call return addresses): `[rsp-8] ← imm; rsp -= 8`.
    PushImm,
    /// Push `src1`: `[rsp-8] ← src1; rsp -= 8`.
    Push,
    /// Pop into `dst`: `dst ← [rsp]; rsp += 8`.
    Pop,
    /// Packed vector ALU: `dst ← src1 op src2` (128-bit).
    VAlu(VecOp),
    /// Vector load: `dst ← [mem]` (128-bit).
    VLd,
    /// Vector store: `[mem] ← src1` (128-bit).
    VSt,
    /// Vector register move.
    VMov,
    /// `dst(gpr/tmp) ← half `imm` of src1(xmm/vtmp)` — scalar extract.
    VExtractQ,
    /// `dst(xmm/vtmp).half imm ← src1(gpr/tmp)` — scalar insert.
    VInsertQ,
    /// Flush the cache line containing the effective address of `mem`.
    Clflush,
    /// `dst ← cycle counter`.
    Rdtsc,
    /// Write MSR number `imm` from `src1` (privileged).
    Wrmsr,
    /// `dst ← MSR number imm` (privileged).
    Rdmsr,
    /// Stop the core.
    Halt,
}

impl UopKind {
    /// Whether the µop reads memory.
    pub const fn is_load(self) -> bool {
        matches!(self, UopKind::Ld | UopKind::VLd | UopKind::Pop)
    }

    /// Whether the µop writes memory.
    pub const fn is_store(self) -> bool {
        matches!(
            self,
            UopKind::St | UopKind::VSt | UopKind::Push | UopKind::PushImm
        )
    }

    /// Whether the µop is a control transfer.
    pub const fn is_branch(self) -> bool {
        matches!(self, UopKind::Br(_) | UopKind::JmpImm | UopKind::JmpReg)
    }

    /// Whether the µop executes on the vector unit.
    pub const fn is_vector_exec(self) -> bool {
        matches!(self, UopKind::VAlu(_))
    }

    /// Whether the µop writes the flags register.
    pub const fn writes_flags(self) -> bool {
        matches!(self, UopKind::Alu(_) | UopKind::Mul)
    }

    /// Structural coverage class of the µop kind: one stable small
    /// integer per kind family (operand payloads like the ALU op or
    /// branch condition are deliberately folded together — coverage bins
    /// must stay coarse and fixed-shape). The class indexes
    /// `csd_telemetry::coverage::UOP_CLASS_NAMES`; a cross-crate test in
    /// `csd-difftest` pins the two tables to each other.
    pub const fn coverage_class(self) -> u8 {
        match self {
            UopKind::Nop => 0,
            UopKind::Mov => 1,
            UopKind::MovImm => 2,
            UopKind::Alu(_) => 3,
            UopKind::Mul => 4,
            UopKind::FAlu(_, _) => 5,
            UopKind::DivQ => 6,
            UopKind::DivR => 7,
            UopKind::Ld => 8,
            UopKind::St => 9,
            UopKind::Lea => 10,
            UopKind::Br(_) => 11,
            UopKind::JmpImm => 12,
            UopKind::JmpReg => 13,
            UopKind::PushImm => 14,
            UopKind::Push => 15,
            UopKind::Pop => 16,
            UopKind::VAlu(_) => 17,
            UopKind::VLd => 18,
            UopKind::VSt => 19,
            UopKind::VMov => 20,
            UopKind::VExtractQ => 21,
            UopKind::VInsertQ => 22,
            UopKind::Clflush => 23,
            UopKind::Rdtsc => 24,
            UopKind::Wrmsr => 25,
            UopKind::Rdmsr => 26,
            UopKind::Halt => 27,
        }
    }
}

/// A single micro-op.
///
/// The operand fields are interpreted per [`UopKind`]; unused fields are
/// `None`. `decoy` marks micro-ops injected by stealth-mode translation;
/// they must never name an architectural destination (enforced by
/// [`Uop::validate`] and checked by property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uop {
    /// Operation.
    pub kind: UopKind,
    /// Destination register.
    pub dst: Option<UReg>,
    /// First source register.
    pub src1: Option<UReg>,
    /// Second source register.
    pub src2: Option<UReg>,
    /// Immediate operand (ALU immediate, branch target, MSR number,
    /// extract/insert half index).
    pub imm: Option<i64>,
    /// Memory operand.
    pub mem: Option<UMem>,
    /// If set, this is a decoy micro-op injected by stealth translation,
    /// targeting the given cache path.
    pub decoy: Option<DecoyTarget>,
    /// Suppress the architectural flags write this µop's kind would
    /// normally perform. Devectorized emulation flows use ALU/MUL µops as
    /// internal lane arithmetic; the macro-ops they stand in for
    /// (`paddb`, `pmullw`, …) do not touch flags, so the emulation must
    /// not either.
    pub no_flags: bool,
}

impl Uop {
    /// A µop with only a kind; builder methods fill the rest.
    pub const fn new(kind: UopKind) -> Uop {
        Uop {
            kind,
            dst: None,
            src1: None,
            src2: None,
            imm: None,
            mem: None,
            decoy: None,
            no_flags: false,
        }
    }

    /// Sets the destination register.
    pub const fn dst(mut self, r: UReg) -> Uop {
        self.dst = Some(r);
        self
    }

    /// Sets the first source register.
    pub const fn src1(mut self, r: UReg) -> Uop {
        self.src1 = Some(r);
        self
    }

    /// Sets the second source register.
    pub const fn src2(mut self, r: UReg) -> Uop {
        self.src2 = Some(r);
        self
    }

    /// Sets the immediate operand.
    pub const fn imm(mut self, v: i64) -> Uop {
        self.imm = Some(v);
        self
    }

    /// Sets the memory operand.
    pub const fn mem(mut self, m: UMem) -> Uop {
        self.mem = Some(m);
        self
    }

    /// Suppresses the flags write (devectorized lane arithmetic).
    pub const fn suppress_flags(mut self) -> Uop {
        self.no_flags = true;
        self
    }

    /// Marks the µop as a data-cache decoy.
    pub const fn decoy(mut self) -> Uop {
        self.decoy = Some(DecoyTarget::Data);
        self
    }

    /// Marks the µop as an instruction-cache decoy.
    pub const fn decoy_inst(mut self) -> Uop {
        self.decoy = Some(DecoyTarget::Inst);
        self
    }

    /// Whether the µop is a decoy of either flavor.
    pub const fn is_decoy(&self) -> bool {
        self.decoy.is_some()
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant:
    /// - loads/stores must carry a memory operand;
    /// - branches must carry a target (immediate or register);
    /// - decoy µops must not write architectural registers or memory.
    pub fn validate(&self) -> Result<(), String> {
        if (self.kind.is_load() || self.kind.is_store() || self.kind == UopKind::Clflush)
            && self.mem.is_none()
            && !matches!(self.kind, UopKind::Push | UopKind::PushImm | UopKind::Pop)
        {
            return Err(format!("{self}: memory µop without memory operand"));
        }
        match self.kind {
            UopKind::Br(_) | UopKind::JmpImm if self.imm.is_none() => {
                return Err(format!("{self}: direct branch without target"));
            }
            UopKind::JmpReg if self.src1.is_none() => {
                return Err(format!("{self}: indirect branch without source"));
            }
            _ => {}
        }
        if self.decoy.is_some() {
            if let Some(d) = self.dst {
                if d.is_architectural() {
                    return Err(format!("{self}: decoy µop writes architectural register"));
                }
            }
            if self.kind.is_store() {
                return Err(format!("{self}: decoy µop writes memory"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.decoy {
            Some(DecoyTarget::Data) => write!(f, "decoy.")?,
            Some(DecoyTarget::Inst) => write!(f, "idecoy.")?,
            None => {}
        }
        match self.kind {
            UopKind::Nop => write!(f, "unop")?,
            UopKind::Mov | UopKind::MovImm | UopKind::VMov => write!(f, "umov")?,
            UopKind::Alu(op) => write!(f, "u{op}")?,
            UopKind::Mul => write!(f, "umul")?,
            UopKind::FAlu(op, w) => {
                let o = match op {
                    FOp::Add => "fadd",
                    FOp::Sub => "fsub",
                    FOp::Mul => "fmul",
                };
                let ww = match w {
                    FWidth::S => "s",
                    FWidth::D => "d",
                };
                write!(f, "u{o}{ww}")?;
            }
            UopKind::DivQ => write!(f, "udivq")?,
            UopKind::DivR => write!(f, "udivr")?,
            UopKind::Ld => write!(f, "uld")?,
            UopKind::St => write!(f, "ust")?,
            UopKind::Lea => write!(f, "ulea")?,
            UopKind::Br(cc) => write!(f, "ubr_{cc}")?,
            UopKind::JmpImm | UopKind::JmpReg => write!(f, "ujmp")?,
            UopKind::PushImm | UopKind::Push => write!(f, "upush")?,
            UopKind::Pop => write!(f, "upop")?,
            UopKind::VAlu(op) => write!(f, "u{op}")?,
            UopKind::VLd => write!(f, "uvld")?,
            UopKind::VSt => write!(f, "uvst")?,
            UopKind::VExtractQ => write!(f, "uvextr")?,
            UopKind::VInsertQ => write!(f, "uvins")?,
            UopKind::Clflush => write!(f, "uflush")?,
            UopKind::Rdtsc => write!(f, "urdtsc")?,
            UopKind::Wrmsr => write!(f, "uwrmsr")?,
            UopKind::Rdmsr => write!(f, "urdmsr")?,
            UopKind::Halt => write!(f, "uhlt")?,
        }
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src1 {
            write!(f, ", {s}")?;
        }
        if let Some(s) = self.src2 {
            write!(f, ", {s}")?;
        }
        if let Some(m) = self.mem {
            write!(f, ", {m}")?;
        }
        if let Some(i) = self.imm {
            write!(f, ", {i:#x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx86_isa::Gpr;

    #[test]
    fn umem_effective_address_with_temps() {
        let m = UMem::base_disp(UReg::Tmp(0), 0x4000, Width::B8);
        let ea = m.effective_address(|r| match r {
            UReg::Tmp(0) => 0x40,
            _ => unreachable!(),
        });
        assert_eq!(ea, 0x4040);
    }

    #[test]
    fn decoy_with_temp_dst_is_valid() {
        let u = Uop::new(UopKind::Ld)
            .dst(UReg::Tmp(1))
            .mem(UMem::abs(0x1000, Width::B1))
            .decoy();
        assert!(u.validate().is_ok());
    }

    #[test]
    fn decoy_with_arch_dst_is_invalid() {
        let u = Uop::new(UopKind::Ld)
            .dst(UReg::Gpr(Gpr::Rax))
            .mem(UMem::abs(0x1000, Width::B1))
            .decoy();
        assert!(u.validate().is_err());
    }

    #[test]
    fn decoy_store_is_invalid() {
        let u = Uop::new(UopKind::St)
            .src1(UReg::Tmp(0))
            .mem(UMem::abs(0x1000, Width::B8))
            .decoy();
        assert!(u.validate().is_err());
    }

    #[test]
    fn branch_needs_target() {
        let u = Uop::new(UopKind::JmpImm);
        assert!(u.validate().is_err());
        assert!(u.imm(0x10).validate().is_ok());
    }

    #[test]
    fn load_needs_mem() {
        assert!(Uop::new(UopKind::Ld).dst(UReg::Tmp(0)).validate().is_err());
    }

    #[test]
    fn classification() {
        assert!(UopKind::Ld.is_load());
        assert!(UopKind::Pop.is_load());
        assert!(UopKind::PushImm.is_store());
        assert!(UopKind::Br(Cc::Eq).is_branch());
        assert!(UopKind::VAlu(VecOp::PXor).is_vector_exec());
        assert!(!UopKind::VLd.is_vector_exec());
        assert!(UopKind::Alu(AluOp::Add).writes_flags());
    }

    #[test]
    fn display_smoke() {
        let u = Uop::new(UopKind::Ld)
            .dst(UReg::Tmp(1))
            .mem(UMem::base_disp(UReg::Tmp(0), 0x4000, Width::B1))
            .decoy();
        assert_eq!(u.to_string(), "decoy.uld t1, [t0 + 0x4000]");
    }
}
