//! The unified internal register namespace.

use mx86_isa::{Gpr, Xmm};
use std::fmt;

/// A register as seen by micro-ops.
///
/// Micro-ops address a wider namespace than the architectural ISA: besides
/// the 16 GPRs and 16 XMM registers, the decoder owns a small set of
/// *temporary* registers (scalar `t0..t7` and vector `vt0..vt3`). Values in
/// temporaries never survive past the micro-op flow of a single macro-op
/// and are invisible to software — the property that lets stealth-mode
/// decoy micro-ops leave architectural state untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UReg {
    /// An architectural general-purpose register.
    Gpr(Gpr),
    /// An architectural vector register.
    Xmm(Xmm),
    /// A decoder-internal scalar temporary (`0..8`).
    Tmp(u8),
    /// A decoder-internal vector temporary (`0..4`).
    VTmp(u8),
}

impl UReg {
    /// Number of scalar temporaries.
    pub const TMP_COUNT: usize = 8;
    /// Number of vector temporaries.
    pub const VTMP_COUNT: usize = 4;

    /// Whether the register is architecturally visible.
    pub const fn is_architectural(self) -> bool {
        matches!(self, UReg::Gpr(_) | UReg::Xmm(_))
    }

    /// Whether the register lives in the vector register file.
    pub const fn is_vector(self) -> bool {
        matches!(self, UReg::Xmm(_) | UReg::VTmp(_))
    }
}

impl From<Gpr> for UReg {
    fn from(g: Gpr) -> Self {
        UReg::Gpr(g)
    }
}

impl From<Xmm> for UReg {
    fn from(x: Xmm) -> Self {
        UReg::Xmm(x)
    }
}

impl fmt::Display for UReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UReg::Gpr(g) => write!(f, "{g}"),
            UReg::Xmm(x) => write!(f, "{x}"),
            UReg::Tmp(i) => write!(f, "t{i}"),
            UReg::VTmp(i) => write!(f, "vt{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architectural_classification() {
        assert!(UReg::Gpr(Gpr::Rax).is_architectural());
        assert!(UReg::Xmm(Xmm::new(2)).is_architectural());
        assert!(!UReg::Tmp(0).is_architectural());
        assert!(!UReg::VTmp(1).is_architectural());
    }

    #[test]
    fn vector_classification() {
        assert!(UReg::Xmm(Xmm::new(0)).is_vector());
        assert!(UReg::VTmp(0).is_vector());
        assert!(!UReg::Gpr(Gpr::Rax).is_vector());
        assert!(!UReg::Tmp(3).is_vector());
    }

    #[test]
    fn display() {
        assert_eq!(UReg::Tmp(5).to_string(), "t5");
        assert_eq!(UReg::VTmp(1).to_string(), "vt1");
        assert_eq!(UReg::from(Gpr::Rdi).to_string(), "rdi");
    }
}
