//! Context-keyed decode memoization.
//!
//! The paper's µop cache works because translation is a pure function of
//! the instruction bytes and the *decoder context* (§3, Fig. 4). The
//! simulator-level analogue: once the CSD engine has decided what context a
//! macro-op decodes under, the materialized µop flow for a given
//! `(pc, context_key, tainted)` triple is deterministic and can be shared
//! across dynamic instances instead of being rebuilt.
//!
//! The table stores [`Arc`]-shared [`Translation`]s so a hit costs one
//! reference-count bump, not a `Vec<Uop>` clone. Entries are tagged with a
//! caller-supplied context discriminant; the caller re-runs its (cheap)
//! decision phase on every decode and only accepts a hit whose tag matches
//! the freshly decided context, which keeps memoization semantically
//! transparent even when the decision logic is stateful.
//!
//! Like the hardware structure it models, the table is a direct-mapped
//! array: the probe is one multiply-mix and one slot compare, a conflict
//! simply evicts, and there is no per-entry heap traffic. The decode
//! stage probes on every dynamic instruction, so a general-purpose hash
//! map (SipHash, bucket walks on flush) is measurable suite overhead.
//!
//! The table remembers the context key its entries were built under.
//! Context keys are monotonically increasing generations, so a probe
//! under a different key means the decoder configuration changed and
//! every cached flow is stale; the flush this implies is O(1) — slots
//! carry an epoch stamp and stale epochs read as vacant — rather than a
//! walk over the array.

use crate::Translation;
use std::sync::Arc;

/// Number of direct-mapped slots. Covers a sizeable working set of hot
/// program counters (loop bodies are far smaller) while keeping the
/// whole array cache-friendly; must be a power of two.
const SLOTS: usize = 4096;

/// SplitMix64-style finalizer used to spread program counters (typically
/// small, 4-byte-stride values) across the slot array.
#[inline]
fn slot_index(pc: u64, tainted: bool) -> usize {
    let mut x = (pc ^ (u64::from(tainted) << 63)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x >> 32) as usize & (SLOTS - 1)
}

/// A decoded µop flow: owned when freshly materialized, shared when it
/// came out of (or was just inserted into) the memo table.
///
/// `Deref`s to [`Translation`], so consumers are agnostic to the
/// difference. Keeping the owned case is not cosmetic: paths that cannot
/// be cached — the table disabled, or bypassed wholesale while a stealth
/// defense is enabled — materialize every decode, and forcing each of
/// those through an `Arc` would add a heap allocation per dynamic
/// instruction for sharing that never happens.
#[derive(Debug, Clone)]
pub enum UopFlow {
    /// Freshly materialized, exclusively owned by this outcome.
    Owned(Translation),
    /// Handed out of the memo table; shared across dynamic instances.
    Shared(Arc<Translation>),
}

impl std::ops::Deref for UopFlow {
    type Target = Translation;
    #[inline]
    fn deref(&self) -> &Translation {
        match self {
            UopFlow::Owned(t) => t,
            UopFlow::Shared(t) => t,
        }
    }
}

impl PartialEq for UopFlow {
    /// Flow equality is translation equality; whether either side happens
    /// to be shared is an implementation detail.
    fn eq(&self, other: &UopFlow) -> bool {
        **self == **other
    }
}

/// Counters for the decode-memoization table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that returned a usable entry.
    pub hits: u64,
    /// Lookups that found nothing (or a stale-tagged entry).
    pub misses: u64,
    /// Decodes that skipped the table entirely (context-volatile
    /// translation: stealth enabled, where window transitions and
    /// watchdog re-arms roll the key faster than lines can be reused).
    pub bypasses: u64,
    /// Whole-table flushes caused by a context-generation change.
    pub invalidations: u64,
    /// Entries inserted.
    pub inserts: u64,
}

/// One memoized translation plus the metadata needed to replay the
/// bookkeeping a full decode would have performed.
#[derive(Debug, Clone)]
pub struct MemoEntry {
    /// The shared µop flow.
    pub translation: Arc<Translation>,
    /// Caller-defined context discriminant; a hit is only valid when this
    /// matches the context the caller just decided on.
    pub tag: u64,
    /// Total µops in the flow (cached so a hit never walks the µop vector).
    pub uops: u32,
    /// Decoy µops in the flow.
    pub decoy_uops: u32,
    /// µop count of the *native* translation this flow replaced (equal to
    /// `uops` unless the flow came from a rewriting decoder such as the
    /// devectorizer, which needs the delta for its expansion statistics).
    pub native_uops: u32,
}

/// One direct-mapped slot: the entry plus the probe tags that decide
/// whether it is visible (`epoch`) and a match (`pc`, `tainted`).
#[derive(Debug, Clone)]
struct Way {
    pc: u64,
    tainted: bool,
    epoch: u64,
    entry: MemoEntry,
}

/// A decode-memoization table keyed by `(pc, context_key, tainted)`.
///
/// The `context_key` component is implicit: the table holds entries for
/// exactly one key at a time and self-flushes when the key moves on,
/// which both bounds memory and makes invalidation O(1) per
/// configuration change instead of O(1) per lookup forever after. The
/// flush itself is logical — bumping an internal epoch makes every live
/// slot read as vacant — so [`DecodeMemo::reset`] (per-operation victim
/// restarts) and key rolls cost a few stores regardless of occupancy.
#[derive(Debug, Clone)]
pub struct DecodeMemo {
    key: u64,
    epoch: u64,
    live: usize,
    ways: Box<[Option<Way>]>,
    stats: MemoStats,
}

impl Default for DecodeMemo {
    fn default() -> DecodeMemo {
        DecodeMemo {
            key: 0,
            epoch: 0,
            live: 0,
            ways: vec![None; SLOTS].into_boxed_slice(),
            stats: MemoStats::default(),
        }
    }
}

impl DecodeMemo {
    /// An empty table at context key 0.
    pub fn new() -> DecodeMemo {
        DecodeMemo::default()
    }

    /// Probes the slot for `pc` under `key`. A key change flushes the
    /// table first (counting an invalidation). Counting of the probe
    /// itself is deferred to the returned [`MemoSlot`], which the caller
    /// must consume as a hit, a fill, or a skip — the point of the handle
    /// is that a miss can materialize its translation and then cache it
    /// without locating the slot a second time.
    #[inline]
    pub fn probe(&mut self, pc: u64, key: u64, tainted: bool) -> MemoSlot<'_> {
        self.roll_key(key);
        MemoSlot {
            idx: slot_index(pc, tainted),
            pc,
            tainted,
            memo: self,
        }
    }

    /// Counts a decode that deliberately skipped the table.
    #[inline]
    pub fn note_bypass(&mut self) {
        self.stats.bypasses += 1;
    }

    #[inline]
    fn roll_key(&mut self, key: u64) {
        if key != self.key {
            self.key = key;
            if self.live > 0 {
                self.stats.invalidations += 1;
            }
            self.flush();
        }
    }

    /// Logically empties the table: stale epochs read as vacant.
    fn flush(&mut self) {
        self.epoch += 1;
        self.live = 0;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Table counters.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Drops all entries (counters survive). Used on checkpoint restore,
    /// where the restored context generation may repeat values the table
    /// already saw under different machine state.
    pub fn clear_entries(&mut self) {
        self.key = 0;
        self.flush();
    }

    /// Resets the table's architectural state — counters and context key —
    /// as if freshly constructed, but keeps the cached lines warm.
    ///
    /// Keeping them is sound: every visible entry was materialized under
    /// the *current* decoder configuration (the epoch stamp flushes on any
    /// context-key roll, and [`DecodeMemo::clear_entries`] covers state
    /// rewinds), and a hit is still tag-checked against the freshly
    /// decided context on every probe. This is what makes per-operation
    /// victim restarts cheap: the second and later runs of a straight-line
    /// crypto kernel hit lines the first run filled, exactly like a
    /// hardware µop cache staying warm across repeated calls.
    pub fn reset(&mut self) {
        self.key = 0;
        self.stats = MemoStats::default();
    }
}

/// A probed table slot: the one-lookup handle for the decode stage's
/// probe → materialize → insert sequence.
///
/// Obtained from [`DecodeMemo::probe`]; the caller inspects the occupant
/// with [`MemoSlot::get`] and then consumes the slot with exactly one of
/// [`MemoSlot::hit`] (usable cached flow), [`MemoSlot::fill`] (miss,
/// cache the freshly materialized flow), or [`MemoSlot::skip`] (miss
/// whose result is not cacheable) so the table's counters stay truthful.
pub struct MemoSlot<'a> {
    idx: usize,
    pc: u64,
    tainted: bool,
    memo: &'a mut DecodeMemo,
}

impl MemoSlot<'_> {
    /// The entry occupying this slot, if any. Occupancy alone is not a
    /// hit: the caller must still match the entry's tag against the
    /// context it just decided on.
    #[inline]
    pub fn get(&self) -> Option<&MemoEntry> {
        match &self.memo.ways[self.idx] {
            Some(w)
                if w.epoch == self.memo.epoch && w.pc == self.pc && w.tainted == self.tainted =>
            {
                Some(&w.entry)
            }
            _ => None,
        }
    }

    /// Consumes the slot as a usable hit.
    #[inline]
    pub fn hit(self) {
        self.memo.stats.hits += 1;
    }

    /// Consumes the slot as a miss and caches `entry` in it, replacing a
    /// tag-stale or conflicting occupant if there was one.
    #[inline]
    pub fn fill(self, entry: MemoEntry) {
        let m = self.memo;
        m.stats.misses += 1;
        m.stats.inserts += 1;
        let way = &mut m.ways[self.idx];
        if !matches!(way, Some(w) if w.epoch == m.epoch) {
            m.live += 1;
        }
        *way = Some(Way {
            pc: self.pc,
            tainted: self.tainted,
            epoch: m.epoch,
            entry,
        });
    }

    /// Consumes the slot as a miss without caching anything (the decode
    /// turned out to produce a non-deterministic flow, e.g. a stealth
    /// window injected decoys after the probe).
    #[inline]
    pub fn skip(self) {
        self.memo.stats.misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use mx86_isa::{Gpr, Inst};

    fn entry(tag: u64) -> MemoEntry {
        let t = translate(
            &Inst::MovRI {
                dst: Gpr::Rax,
                imm: 1,
            },
            4,
        );
        let n = t.uops.len() as u32;
        MemoEntry {
            translation: Arc::new(t),
            tag,
            uops: n,
            decoy_uops: 0,
            native_uops: n,
        }
    }

    /// Probe-and-insert, as the decode stage does on a miss.
    fn fill(m: &mut DecodeMemo, pc: u64, key: u64, tainted: bool, e: MemoEntry) {
        m.probe(pc, key, tainted).fill(e);
    }

    /// Probe-as-lookup: consume the slot and report whether it held a
    /// usable entry's tag.
    fn lookup(m: &mut DecodeMemo, pc: u64, key: u64, tainted: bool) -> Option<u64> {
        let slot = m.probe(pc, key, tainted);
        match slot.get().map(|e| e.tag) {
            Some(tag) => {
                slot.hit();
                Some(tag)
            }
            None => {
                slot.skip();
                None
            }
        }
    }

    #[test]
    fn hit_after_fill_same_key() {
        let mut m = DecodeMemo::new();
        fill(&mut m, 0x100, 1, false, entry(7));
        assert_eq!(lookup(&mut m, 0x100, 1, false), Some(7));
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.stats().misses, 1);
        assert_eq!(m.stats().inserts, 1);
    }

    #[test]
    fn taint_is_part_of_the_key() {
        let mut m = DecodeMemo::new();
        fill(&mut m, 0x100, 1, false, entry(0));
        assert!(lookup(&mut m, 0x100, 1, true).is_none());
        assert!(lookup(&mut m, 0x100, 1, false).is_some());
    }

    #[test]
    fn key_change_flushes() {
        let mut m = DecodeMemo::new();
        fill(&mut m, 0x100, 1, false, entry(0));
        assert!(lookup(&mut m, 0x100, 2, false).is_none());
        assert_eq!(m.stats().invalidations, 1);
        assert_eq!(m.len(), 0);
        // Going back to an old key must not resurrect entries.
        assert!(lookup(&mut m, 0x100, 1, false).is_none());
    }

    #[test]
    fn fill_replaces_a_stale_occupant() {
        let mut m = DecodeMemo::new();
        fill(&mut m, 0x100, 1, false, entry(7));
        // Tag mismatch path: the occupant is unusable, so the decode
        // materializes and fills the same slot with the fresh flow.
        fill(&mut m, 0x100, 1, false, entry(9));
        assert_eq!(m.len(), 1);
        assert_eq!(lookup(&mut m, 0x100, 1, false), Some(9));
        assert_eq!(m.stats().misses, 2);
        assert_eq!(m.stats().inserts, 2);
    }

    #[test]
    fn conflicting_pc_evicts_without_growing() {
        let mut m = DecodeMemo::new();
        // Two pcs that map to the same direct-mapped slot: scan for a
        // colliding partner rather than hard-coding the hash layout.
        let base = 0x1000u64;
        let partner = (1..1_000_000u64)
            .map(|i| base + 4 * i)
            .find(|&pc| slot_index(pc, false) == slot_index(base, false))
            .expect("some pc collides within a million probes");
        fill(&mut m, base, 1, false, entry(1));
        fill(&mut m, partner, 1, false, entry(2));
        assert_eq!(m.len(), 1, "conflict evicts, never chains");
        assert!(lookup(&mut m, base, 1, false).is_none());
        assert_eq!(lookup(&mut m, partner, 1, false), Some(2));
    }

    #[test]
    fn skip_counts_a_miss_without_inserting() {
        let mut m = DecodeMemo::new();
        m.probe(0x100, 1, false).skip();
        assert!(m.is_empty());
        assert_eq!(m.stats().misses, 1);
        assert_eq!(m.stats().inserts, 0);
    }

    #[test]
    fn reset_restores_default_counters_but_keeps_lines_warm() {
        let mut m = DecodeMemo::new();
        fill(&mut m, 0x100, 0, false, entry(4));
        m.note_bypass();
        m.reset();
        assert_eq!(*m.stats(), MemoStats::default());
        // The decoder configuration did not change, so the line is still
        // valid and the first post-reset probe hits it.
        assert_eq!(lookup(&mut m, 0x100, 0, false), Some(4));
        // ... but any context-key roll after the reset flushes as usual.
        assert!(lookup(&mut m, 0x100, 1, false).is_none());
        assert_eq!(m.stats().invalidations, 1);
    }

    #[test]
    fn clear_entries_hides_lines_but_keeps_counters() {
        let mut m = DecodeMemo::new();
        fill(&mut m, 0x100, 3, false, entry(0));
        m.note_bypass();
        m.clear_entries();
        assert!(m.is_empty());
        assert_eq!(m.stats().bypasses, 1);
        // A rewound machine may repeat context keys under different state:
        // nothing from before the clear may resurface, same key or not.
        assert!(lookup(&mut m, 0x100, 3, false).is_none());
    }
}
