//! # csd-uops — the internal micro-op ISA and static macro-op translation
//!
//! Modern x86 front ends translate native *macro-ops* into internal RISC-like
//! *micro-ops* (µops). This crate defines that internal ISA for the CSD
//! reproduction:
//!
//! - [`Uop`] / [`UopKind`] — the µop format, including decoder-internal
//!   temporary registers ([`UReg::Tmp`]) that are *not architecturally
//!   visible*. Decoy µops injected by stealth-mode translation use only
//!   temporaries, so they cannot perturb architectural state.
//! - [`translate`] — the static, table-driven translation performed by the
//!   native decoders (the paper's four legacy decoders plus the microcode
//!   ROM for instructions that expand to more than four µops).
//! - [`fusion`] — micro-op fusion (load-op and decoy `ld/sub` pairs) and
//!   macro-op fusion (`cmp`/`test` + `jcc`), the front-end optimizations the
//!   paper leans on to keep custom translations compact.
//!
//! ```
//! use mx86_isa::{Inst, Gpr, MemRef, Width};
//! use csd_uops::{translate, DecoderClass};
//!
//! let ld = Inst::Load { dst: Gpr::Rax, mem: MemRef::base(Gpr::Rbx), width: Width::B8 };
//! let t = translate(&ld, 0x1005);
//! assert_eq!(t.uops.len(), 1);
//! assert_eq!(t.decoder_class(), DecoderClass::Simple);
//! ```

#![warn(missing_docs)]

pub mod fusion;
mod memo;
mod translate;
mod uop;
mod ureg;

pub use fusion::{can_macro_fuse, fuse_slots, fused_len as fused_len_of, Slot};
pub use memo::{DecodeMemo, MemoEntry, MemoSlot, MemoStats, UopFlow};
pub use translate::{translate, DecoderClass, Translation, DIV_UOP_COUNT, MSROM_THRESHOLD};
pub use uop::{DecoyTarget, FOp, FWidth, UMem, Uop, UopKind};
pub use ureg::UReg;
