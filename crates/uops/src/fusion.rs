//! Micro-op and macro-op fusion.
//!
//! Fusion is central to the paper's performance story: custom translations
//! are auto-optimized with the existing fusion machinery so that, e.g., the
//! decoy `ld/sub` pair of the stealth micro-loop occupies a single fused
//! slot, and `cmp+jcc` pairs fuse at the macro level. With fusion enabled
//! the paper's µop-cache hit rate only drops from 43% to 42% under CSD.

use crate::uop::{Uop, UopKind};
use mx86_isa::Inst;

/// A fused issue slot holding one or two µops.
///
/// The micro-op cache, micro-op queue, and rename stage all operate on
/// *fused* slots; the scheduler splits a slot back into its component µops
/// at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The first (or only) µop.
    pub first: Uop,
    /// The fused companion, if any.
    pub second: Option<Uop>,
}

impl Slot {
    /// A slot holding a single µop.
    pub const fn single(u: Uop) -> Slot {
        Slot {
            first: u,
            second: None,
        }
    }

    /// A slot holding a fused pair.
    pub const fn fused(a: Uop, b: Uop) -> Slot {
        Slot {
            first: a,
            second: Some(b),
        }
    }

    /// Number of unfused µops in the slot.
    pub const fn uop_count(&self) -> usize {
        if self.second.is_some() {
            2
        } else {
            1
        }
    }

    /// Iterates the component µops.
    pub fn uops(&self) -> impl Iterator<Item = &Uop> {
        std::iter::once(&self.first).chain(self.second.as_ref())
    }
}

/// Whether two adjacent µops of the *same* macro-op flow may micro-fuse.
///
/// Rules (mirroring Intel's):
/// - a load followed by an ALU op that consumes the loaded temporary
///   (load-op fusion);
/// - a decoy load followed by the decoy index decrement of the stealth
///   micro-loop (`ld/subi` in the paper's Figure 4c).
pub fn can_micro_fuse(a: &Uop, b: &Uop) -> bool {
    if a.kind != UopKind::Ld {
        return false;
    }
    match b.kind {
        UopKind::Alu(_) | UopKind::Mul => {
            let consumes = a.dst.is_some() && (b.src1 == a.dst || b.src2 == a.dst);
            let decoy_pair = a.is_decoy() && b.is_decoy();
            consumes || decoy_pair
        }
        _ => false,
    }
}

/// Whether two adjacent *macro-ops* may macro-fuse (`cmp`/`test` + `jcc`).
pub fn can_macro_fuse(a: &Inst, b: &Inst) -> bool {
    matches!(a, Inst::Cmp { .. } | Inst::Test { .. }) && matches!(b, Inst::Jcc { .. })
}

/// Packs a µop flow into fused slots.
///
/// Adjacent µops satisfying [`can_micro_fuse`] share a slot; everything
/// else occupies its own slot. Order is preserved.
pub fn fuse_slots(uops: &[Uop]) -> Vec<Slot> {
    let mut slots = Vec::with_capacity(uops.len());
    let mut i = 0;
    while i < uops.len() {
        if i + 1 < uops.len() && can_micro_fuse(&uops[i], &uops[i + 1]) {
            slots.push(Slot::fused(uops[i], uops[i + 1]));
            i += 2;
        } else {
            slots.push(Slot::single(uops[i]));
            i += 1;
        }
    }
    slots
}

/// Number of fused slots a µop flow occupies (without materializing them).
pub fn fused_len(uops: &[Uop]) -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < uops.len() {
        if i + 1 < uops.len() && can_micro_fuse(&uops[i], &uops[i + 1]) {
            i += 2;
        } else {
            i += 1;
        }
        n += 1;
    }
    n
}

/// Fuses a `cmp`/`test` µop with the following branch µop into a single
/// compare-and-branch slot, used by the decoder when
/// [`can_macro_fuse`] holds for the parent macro-ops.
pub fn macro_fuse(cmp: Uop, br: Uop) -> Slot {
    debug_assert!(cmp.kind.writes_flags());
    debug_assert!(br.kind.is_branch());
    Slot::fused(cmp, br)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use crate::uop::UMem;
    use crate::ureg::UReg;
    use mx86_isa::{AluOp, Cc, Gpr, MemRef, RegImm, Width};

    #[test]
    fn load_op_pair_fuses() {
        let t = translate(
            &Inst::AluLoad {
                op: AluOp::Add,
                dst: Gpr::Rax,
                mem: MemRef::base(Gpr::Rbx),
                width: Width::B8,
            },
            0,
        );
        let slots = fuse_slots(&t.uops);
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].uop_count(), 2);
        assert_eq!(fused_len(&t.uops), 1);
    }

    #[test]
    fn independent_uops_do_not_fuse() {
        let a = Uop::new(UopKind::Ld)
            .dst(UReg::Tmp(0))
            .mem(UMem::abs(0, Width::B8));
        let b = Uop::new(UopKind::Alu(AluOp::Add))
            .dst(UReg::Tmp(2))
            .src1(UReg::Tmp(2))
            .imm(1);
        assert!(!can_micro_fuse(&a, &b));
        assert_eq!(fuse_slots(&[a, b]).len(), 2);
    }

    #[test]
    fn decoy_ld_sub_pair_fuses() {
        let ld = Uop::new(UopKind::Ld)
            .dst(UReg::Tmp(1))
            .mem(UMem::base_disp(UReg::Tmp(0), 0x8000, Width::B1))
            .decoy();
        let sub = Uop::new(UopKind::Alu(AluOp::Sub))
            .dst(UReg::Tmp(0))
            .src1(UReg::Tmp(0))
            .imm(64)
            .decoy();
        assert!(can_micro_fuse(&ld, &sub));
    }

    #[test]
    fn stores_do_not_fuse_with_loads() {
        let ld = Uop::new(UopKind::Ld)
            .dst(UReg::Tmp(0))
            .mem(UMem::abs(0, Width::B8));
        let st = Uop::new(UopKind::St)
            .src1(UReg::Tmp(0))
            .mem(UMem::abs(8, Width::B8));
        assert!(!can_micro_fuse(&ld, &st));
    }

    #[test]
    fn cmp_jcc_macro_fuses() {
        let cmp = Inst::Cmp {
            a: Gpr::Rax,
            b: RegImm::Imm(0),
        };
        let jcc = Inst::Jcc {
            cc: Cc::Eq,
            target: 0x40,
        };
        let jmp = Inst::Jmp { target: 0x40 };
        assert!(can_macro_fuse(&cmp, &jcc));
        assert!(!can_macro_fuse(&cmp, &jmp));
        assert!(!can_macro_fuse(&jcc, &cmp));

        let cu = translate(&cmp, 0).uops[0];
        let ju = translate(&jcc, 0).uops[0];
        let slot = macro_fuse(cu, ju);
        assert_eq!(slot.uop_count(), 2);
    }

    #[test]
    fn fused_len_matches_fuse_slots() {
        let t = translate(
            &Inst::AluStore {
                op: AluOp::Add,
                mem: MemRef::abs(0x40),
                src: RegImm::Imm(2),
                width: Width::B8,
            },
            0,
        );
        assert_eq!(fused_len(&t.uops), fuse_slots(&t.uops).len());
    }

    #[test]
    fn slot_iteration() {
        let a = Uop::new(UopKind::Nop);
        let s = Slot::fused(a, a);
        assert_eq!(s.uops().count(), 2);
        assert_eq!(Slot::single(a).uops().count(), 1);
    }
}
