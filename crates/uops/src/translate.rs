//! Static table-driven macro-op → micro-op translation.

use crate::uop::{UMem, Uop, UopKind};
use crate::ureg::UReg;
use mx86_isa::{AluOp, Inst, RegImm, Width};

/// Instructions that decompose into more than this many µops are
/// microsequenced by the microcode ROM instead of the decoders
/// (the paper: "complex instructions that decompose into more than four
/// micro-ops are microsequenced by a microcode ROM").
pub const MSROM_THRESHOLD: usize = 4;

/// Number of µops in the microsequenced divide flow.
pub const DIV_UOP_COUNT: usize = 8;

/// Which decode resource a translation requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderClass {
    /// One µop: any of the four decoders can translate it.
    Simple,
    /// Two to four µops: only the complex decoder (decoder 0).
    Complex,
    /// More than four µops: the microcode ROM sequencer.
    Msrom,
}

/// The result of translating one macro-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// The µop flow, in program order.
    pub uops: Vec<Uop>,
    /// Number of µops that occupy front-end storage (µop cache ways); for
    /// custom translations with micro-loops this is the *static* loop body,
    /// smaller than the dynamic `uops` stream.
    pub static_uops: usize,
    /// Whether the flow may be cached in the micro-op cache. Flows longer
    /// than six fused µops are not cacheable (µop-cache line limit).
    pub cacheable: bool,
    /// Whether the flow was produced by the microcode ROM.
    pub from_msrom: bool,
}

impl Translation {
    /// Builds a plain translation where all µops are static and cacheable.
    pub fn plain(uops: Vec<Uop>) -> Translation {
        let n = uops.len();
        Translation {
            uops,
            static_uops: n,
            cacheable: true,
            from_msrom: n > MSROM_THRESHOLD,
        }
    }

    /// The decode resource required.
    pub fn decoder_class(&self) -> DecoderClass {
        if self.from_msrom || self.static_uops > MSROM_THRESHOLD {
            DecoderClass::Msrom
        } else if self.static_uops > 1 {
            DecoderClass::Complex
        } else {
            DecoderClass::Simple
        }
    }
}

fn ri_to_operands(u: Uop, src: RegImm) -> Uop {
    match src {
        RegImm::Reg(r) => u.src2(UReg::Gpr(r)),
        RegImm::Imm(i) => u.imm(i),
    }
}

/// Translates a macro-op into its *native* µop flow.
///
/// `next_pc` is the address of the following instruction (needed for
/// `call`'s pushed return address). This is the static translation the
/// paper's legacy decode pipeline performs; context-sensitive decoding
/// replaces or augments this flow for instructions it intercepts.
pub fn translate(inst: &Inst, next_pc: u64) -> Translation {
    use UopKind as K;
    let t0 = UReg::Tmp(0);
    let t7 = UReg::Tmp(7);
    let vt0 = UReg::VTmp(0);

    let uops = match *inst {
        Inst::Nop { .. } => vec![Uop::new(K::Nop)],
        Inst::MovRR { dst, src } => {
            vec![Uop::new(K::Mov).dst(dst.into()).src1(src.into())]
        }
        Inst::MovRI { dst, imm } => vec![Uop::new(K::MovImm).dst(dst.into()).imm(imm)],
        Inst::Load { dst, mem, width } => {
            vec![Uop::new(K::Ld)
                .dst(dst.into())
                .mem(UMem::from_mem(mem, width))]
        }
        Inst::Store { mem, src, width } => {
            vec![Uop::new(K::St)
                .src1(src.into())
                .mem(UMem::from_mem(mem, width))]
        }
        Inst::Lea { dst, mem } => {
            vec![Uop::new(K::Lea)
                .dst(dst.into())
                .mem(UMem::from_mem(mem, Width::B8))]
        }
        Inst::Alu { op, dst, src } => {
            let u = Uop::new(K::Alu(op)).dst(dst.into()).src1(dst.into());
            vec![ri_to_operands(u, src)]
        }
        Inst::AluLoad {
            op,
            dst,
            mem,
            width,
        } => vec![
            Uop::new(K::Ld).dst(t0).mem(UMem::from_mem(mem, width)),
            Uop::new(K::Alu(op))
                .dst(dst.into())
                .src1(dst.into())
                .src2(t0),
        ],
        Inst::AluStore {
            op,
            mem,
            src,
            width,
        } => {
            let m = UMem::from_mem(mem, width);
            let alu = Uop::new(K::Alu(op)).dst(t0).src1(t0);
            vec![
                Uop::new(K::Ld).dst(t0).mem(m),
                ri_to_operands(alu, src),
                Uop::new(K::St).src1(t0).mem(m),
            ]
        }
        Inst::Mul { dst, src } => {
            let u = Uop::new(K::Mul).dst(dst.into()).src1(dst.into());
            vec![ri_to_operands(u, src)]
        }
        Inst::Div { src } => return translate_div(src),
        Inst::Cmp { a, b } => {
            let u = Uop::new(K::Alu(AluOp::Sub)).src1(a.into());
            vec![ri_to_operands(u, b)]
        }
        Inst::Test { a, b } => {
            let u = Uop::new(K::Alu(AluOp::And)).src1(a.into());
            vec![ri_to_operands(u, b)]
        }
        Inst::Jmp { target } => vec![Uop::new(K::JmpImm).imm(target as i64)],
        Inst::Jcc { cc, target } => vec![Uop::new(K::Br(cc)).imm(target as i64)],
        Inst::JmpInd { reg } => vec![Uop::new(K::JmpReg).src1(reg.into())],
        Inst::Call { target } => vec![
            Uop::new(K::PushImm).imm(next_pc as i64),
            Uop::new(K::JmpImm).imm(target as i64),
        ],
        Inst::Ret => vec![Uop::new(K::Pop).dst(t7), Uop::new(K::JmpReg).src1(t7)],
        Inst::Push { src } => vec![Uop::new(K::Push).src1(src.into())],
        Inst::Pop { dst } => vec![Uop::new(K::Pop).dst(dst.into())],
        Inst::VLoad { dst, mem } => {
            vec![Uop::new(K::VLd)
                .dst(dst.into())
                .mem(UMem::from_mem(mem, Width::B16))]
        }
        Inst::VStore { mem, src } => {
            vec![Uop::new(K::VSt)
                .src1(src.into())
                .mem(UMem::from_mem(mem, Width::B16))]
        }
        Inst::VMovRR { dst, src } => {
            vec![Uop::new(K::VMov).dst(dst.into()).src1(src.into())]
        }
        Inst::VAlu { op, dst, src } => {
            vec![Uop::new(K::VAlu(op))
                .dst(dst.into())
                .src1(dst.into())
                .src2(src.into())]
        }
        Inst::VAluLoad { op, dst, mem } => vec![
            Uop::new(K::VLd)
                .dst(vt0)
                .mem(UMem::from_mem(mem, Width::B16)),
            Uop::new(K::VAlu(op))
                .dst(dst.into())
                .src1(dst.into())
                .src2(vt0),
        ],
        Inst::VMovToGpr { dst, src } => {
            vec![Uop::new(K::VExtractQ)
                .dst(dst.into())
                .src1(src.into())
                .imm(0)]
        }
        Inst::VMovFromGpr { dst, src } => {
            vec![Uop::new(K::VInsertQ)
                .dst(dst.into())
                .src1(src.into())
                .imm(0)]
        }
        Inst::Clflush { mem } => {
            vec![Uop::new(K::Clflush).mem(UMem::from_mem(mem, Width::B1))]
        }
        Inst::Rdtsc => vec![Uop::new(K::Rdtsc).dst(UReg::Gpr(mx86_isa::Gpr::Rax))],
        Inst::Wrmsr { msr, src } => {
            vec![Uop::new(K::Wrmsr).src1(src.into()).imm(i64::from(msr))]
        }
        Inst::Rdmsr { dst, msr } => {
            vec![Uop::new(K::Rdmsr).dst(dst.into()).imm(i64::from(msr))]
        }
        Inst::Halt => vec![Uop::new(K::Halt)],
    };
    Translation::plain(uops)
}

/// The microsequenced divide flow: RAX ← RDX:RAX / src, RDX ← remainder.
///
/// Modeled as an 8-µop MSROM flow (operand staging, quotient, remainder,
/// sequencer slots), matching the order of magnitude of real x86 divides.
fn translate_div(src: mx86_isa::Gpr) -> Translation {
    use UopKind as K;
    let rax = UReg::Gpr(mx86_isa::Gpr::Rax);
    let rdx = UReg::Gpr(mx86_isa::Gpr::Rdx);
    let t0 = UReg::Tmp(0);
    let t1 = UReg::Tmp(1);
    let mut uops = vec![
        Uop::new(K::Mov).dst(t0).src1(rax),
        Uop::new(K::Mov).dst(t1).src1(rdx),
        Uop::new(K::DivQ).dst(rax).src1(t0).src2(src.into()),
        Uop::new(K::DivR).dst(rdx).src1(t0).src2(src.into()),
    ];
    // Sequencer slots: the MSROM streams in fixed-width groups; pad to the
    // modeled flow length.
    while uops.len() < DIV_UOP_COUNT {
        uops.push(Uop::new(K::Nop));
    }
    let mut t = Translation::plain(uops);
    t.from_msrom = true;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx86_isa::{Cc, Gpr, MemRef, VecOp, Xmm};

    fn uop_count(i: Inst) -> usize {
        translate(&i, 0x100).uops.len()
    }

    #[test]
    fn simple_ops_are_one_uop() {
        assert_eq!(
            uop_count(Inst::MovRR {
                dst: Gpr::Rax,
                src: Gpr::Rbx
            }),
            1
        );
        assert_eq!(
            uop_count(Inst::MovRI {
                dst: Gpr::Rax,
                imm: 7
            }),
            1
        );
        assert_eq!(
            uop_count(Inst::Load {
                dst: Gpr::Rax,
                mem: MemRef::abs(0),
                width: Width::B8
            }),
            1
        );
        assert_eq!(
            uop_count(Inst::Jcc {
                cc: Cc::Eq,
                target: 0
            }),
            1
        );
        assert_eq!(
            uop_count(Inst::VAlu {
                op: VecOp::PAddB,
                dst: Xmm::new(0),
                src: Xmm::new(1)
            }),
            1
        );
    }

    #[test]
    fn load_op_is_two_uops_complex() {
        let t = translate(
            &Inst::AluLoad {
                op: AluOp::Xor,
                dst: Gpr::Rax,
                mem: MemRef::base(Gpr::Rbx),
                width: Width::B4,
            },
            0x100,
        );
        assert_eq!(t.uops.len(), 2);
        assert_eq!(t.decoder_class(), DecoderClass::Complex);
        assert!(t.uops[0].kind.is_load());
        assert_eq!(t.uops[0].dst, Some(UReg::Tmp(0)));
    }

    #[test]
    fn rmw_is_three_uops() {
        let t = translate(
            &Inst::AluStore {
                op: AluOp::Add,
                mem: MemRef::abs(0x100),
                src: RegImm::Imm(1),
                width: Width::B8,
            },
            0x100,
        );
        assert_eq!(t.uops.len(), 3);
        assert_eq!(t.decoder_class(), DecoderClass::Complex);
    }

    #[test]
    fn div_is_microsequenced() {
        let t = translate(&Inst::Div { src: Gpr::Rbx }, 0x100);
        assert_eq!(t.uops.len(), DIV_UOP_COUNT);
        assert!(t.from_msrom);
        assert_eq!(t.decoder_class(), DecoderClass::Msrom);
    }

    #[test]
    fn call_pushes_return_address() {
        let t = translate(&Inst::Call { target: 0x4000 }, 0x1005);
        assert_eq!(t.uops.len(), 2);
        assert_eq!(t.uops[0].kind, UopKind::PushImm);
        assert_eq!(t.uops[0].imm, Some(0x1005));
        assert_eq!(t.uops[1].imm, Some(0x4000));
    }

    #[test]
    fn ret_pops_through_temp() {
        let t = translate(&Inst::Ret, 0x1001);
        assert_eq!(t.uops.len(), 2);
        assert_eq!(t.uops[0].dst, Some(UReg::Tmp(7)));
        assert_eq!(t.uops[1].kind, UopKind::JmpReg);
    }

    #[test]
    fn cmp_has_no_destination() {
        let t = translate(
            &Inst::Cmp {
                a: Gpr::Rax,
                b: RegImm::Imm(5),
            },
            0,
        );
        assert_eq!(t.uops.len(), 1);
        assert_eq!(t.uops[0].dst, None);
        assert!(t.uops[0].kind.writes_flags());
    }

    #[test]
    fn all_native_translations_validate() {
        let insts = [
            Inst::Nop { len: 3 },
            Inst::MovRR {
                dst: Gpr::Rax,
                src: Gpr::Rbx,
            },
            Inst::Load {
                dst: Gpr::Rax,
                mem: MemRef::abs(8),
                width: Width::B8,
            },
            Inst::Store {
                mem: MemRef::abs(8),
                src: Gpr::Rax,
                width: Width::B8,
            },
            Inst::AluStore {
                op: AluOp::Or,
                mem: MemRef::abs(8),
                src: RegImm::Reg(Gpr::Rcx),
                width: Width::B8,
            },
            Inst::Div { src: Gpr::Rcx },
            Inst::Call { target: 64 },
            Inst::Ret,
            Inst::VAluLoad {
                op: VecOp::MulPs,
                dst: Xmm::new(2),
                mem: MemRef::abs(64),
            },
            Inst::Clflush {
                mem: MemRef::abs(0x40),
            },
            Inst::Wrmsr {
                msr: 0x10,
                src: Gpr::Rax,
            },
        ];
        for i in insts {
            for u in translate(&i, 0x10).uops {
                u.validate().unwrap_or_else(|e| panic!("{i}: {e}"));
            }
        }
    }

    #[test]
    fn native_translations_never_produce_decoys() {
        let i = Inst::Load {
            dst: Gpr::Rax,
            mem: MemRef::abs(8),
            width: Width::B8,
        };
        assert!(translate(&i, 0).uops.iter().all(|u| !u.is_decoy()));
    }
}
