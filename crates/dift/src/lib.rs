//! # csd-dift — dynamic information-flow tracking substrate
//!
//! The paper uses a lightweight hardware DIFT engine (Kannan et al.) as one
//! of the *trigger mechanisms* for context-sensitive decoding: when the
//! decoder encounters a load or branch whose operands derive from tainted
//! data (e.g. a cryptographic key), stealth-mode translation kicks in.
//!
//! This crate implements taint state and µop-level propagation:
//!
//! - sources: byte-granular memory ranges marked tainted (key buffers);
//! - propagation: copy, ALU (union of sources), load (loaded-data taint ∪
//!   address-register taint), store (data taint to memory), flags taint
//!   from tainted compares;
//! - queries: *tainted load/store* (any address-forming register tainted,
//!   or tainted bytes loaded) and *tainted branch* (flags derived from
//!   tainted data) — exactly the conditions that fire stealth mode.
//!
//! The paper models the taint lookup as an extra 4-cycle L2-tag access
//! latency ([`DIFT_L2_TAG_PENALTY`]); the pipeline applies it to loads
//! while DIFT is enabled.
//!
//! ```
//! use csd_dift::Dift;
//! use csd_uops::{Uop, UopKind, UMem, UReg};
//! use mx86_isa::{AddrRange, Gpr, Width};
//!
//! let mut dift = Dift::new();
//! dift.taint_memory(AddrRange::new(0x1000, 0x1010)); // secret key bytes
//!
//! // Load a key byte: the destination register becomes tainted.
//! let ld = Uop::new(UopKind::Ld).dst(UReg::Gpr(Gpr::Rax)).mem(UMem::abs(0x1000, Width::B1));
//! let ev = dift.propagate(&ld, Some(0x1000));
//! assert!(ev.loaded_tainted_data);
//! assert!(dift.reg_tainted(UReg::Gpr(Gpr::Rax)));
//! ```

#![warn(missing_docs)]

use csd_uops::{UReg, Uop, UopKind};
use mx86_isa::{AddrRange, Gpr, Xmm};
use std::collections::HashSet;

/// Extra load latency (cycles) charged while DIFT is active, modeling the
/// taint-tag lookup as an additional L2-tag access (paper §VI-A).
pub const DIFT_L2_TAG_PENALTY: u64 = 4;

/// What a propagation step observed — the inputs to the CSD trigger logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintEvent {
    /// A load/store computed its address from a tainted register
    /// (key-dependent access pattern — the AES T-table case).
    pub tainted_address: bool,
    /// A load read bytes that are themselves tainted.
    pub loaded_tainted_data: bool,
    /// A conditional branch consumed tainted flags
    /// (key-dependent control flow — the RSA square-and-multiply case).
    pub tainted_branch: bool,
}

impl TaintEvent {
    /// Whether the event should trigger stealth-mode translation.
    pub fn triggers_stealth(&self) -> bool {
        self.tainted_address || self.tainted_branch
    }
}

/// Taint state over the full micro-architectural register namespace plus a
/// byte-granular memory shadow.
#[derive(Debug, Clone, Default)]
pub struct Dift {
    gprs: [bool; Gpr::COUNT],
    xmms: [bool; Xmm::COUNT],
    tmps: [bool; UReg::TMP_COUNT],
    vtmps: [bool; UReg::VTMP_COUNT],
    flags: bool,
    mem: HashSet<u64>,
    enabled: bool,
}

impl Dift {
    /// Fresh, enabled DIFT state with nothing tainted.
    pub fn new() -> Dift {
        Dift {
            enabled: true,
            ..Dift::default()
        }
    }

    /// Enables or disables tracking. While disabled, propagation is a
    /// no-op and all queries report untainted.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether tracking is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Marks every byte in `range` as tainted (a taint *source*, e.g. the
    /// buffer a secret key is read into).
    pub fn taint_memory(&mut self, range: AddrRange) {
        for b in range.start..range.end {
            self.mem.insert(b);
        }
    }

    /// Clears taint from every byte in `range`.
    pub fn untaint_memory(&mut self, range: AddrRange) {
        for b in range.start..range.end {
            self.mem.remove(&b);
        }
    }

    /// Marks a register as tainted (direct source injection).
    pub fn taint_reg(&mut self, r: UReg) {
        self.set_reg(r, true);
    }

    /// Whether a register is tainted.
    pub fn reg_tainted(&self, r: UReg) -> bool {
        if !self.enabled {
            return false;
        }
        match r {
            UReg::Gpr(g) => self.gprs[g.index()],
            UReg::Xmm(x) => self.xmms[x.index()],
            UReg::Tmp(i) => self.tmps[i as usize],
            UReg::VTmp(i) => self.vtmps[i as usize],
        }
    }

    /// Whether any byte of `[addr, addr+len)` is tainted. Addresses wrap
    /// (wild pointers reach the top of the address space; the
    /// architectural memory model wraps the same way).
    pub fn memory_tainted(&self, addr: u64, len: u64) -> bool {
        if !self.enabled {
            return false;
        }
        (0..len).any(|i| self.mem.contains(&addr.wrapping_add(i)))
    }

    /// Whether the flags register is tainted.
    pub fn flags_tainted(&self) -> bool {
        self.enabled && self.flags
    }

    /// Number of tainted memory bytes (diagnostics).
    pub fn tainted_bytes(&self) -> usize {
        self.mem.len()
    }

    fn set_reg(&mut self, r: UReg, v: bool) {
        match r {
            UReg::Gpr(g) => self.gprs[g.index()] = v,
            UReg::Xmm(x) => self.xmms[x.index()] = v,
            UReg::Tmp(i) => self.tmps[i as usize] = v,
            UReg::VTmp(i) => self.vtmps[i as usize] = v,
        }
    }

    fn mem_operand_addr_tainted(&self, uop: &Uop) -> bool {
        uop.mem.is_some_and(|m| {
            m.base.is_some_and(|b| self.reg_tainted(b))
                || m.index.is_some_and(|(i, _)| self.reg_tainted(i))
        })
    }

    /// Propagates taint through one µop and reports trigger-relevant
    /// observations.
    ///
    /// `ea` is the resolved effective address for memory µops (`None` for
    /// non-memory µops). Decoy µops are skipped entirely: they are
    /// microarchitectural noise, not data flow.
    pub fn propagate(&mut self, uop: &Uop, ea: Option<u64>) -> TaintEvent {
        let mut ev = TaintEvent::default();
        if !self.enabled || uop.is_decoy() {
            return ev;
        }
        let src_taint = |d: &Dift| {
            uop.src1.is_some_and(|r| d.reg_tainted(r)) || uop.src2.is_some_and(|r| d.reg_tainted(r))
        };
        match uop.kind {
            UopKind::Nop | UopKind::Halt | UopKind::Rdtsc | UopKind::Clflush => {}
            UopKind::MovImm => {
                if let Some(d) = uop.dst {
                    self.set_reg(d, false);
                }
            }
            UopKind::Mov | UopKind::VMov | UopKind::VExtractQ | UopKind::VInsertQ => {
                let t = src_taint(self);
                if let Some(d) = uop.dst {
                    // Inserts merge into the destination: keep existing taint.
                    let keep = uop.kind == UopKind::VInsertQ && self.reg_tainted(d);
                    self.set_reg(d, t || keep);
                }
            }
            UopKind::Alu(_)
            | UopKind::Mul
            | UopKind::FAlu(..)
            | UopKind::DivQ
            | UopKind::DivR
            | UopKind::VAlu(_) => {
                let t = src_taint(self);
                if let Some(d) = uop.dst {
                    self.set_reg(d, t);
                }
                if uop.kind.writes_flags() || matches!(uop.kind, UopKind::DivQ | UopKind::DivR) {
                    self.flags = t;
                }
            }
            UopKind::Lea => {
                let t = self.mem_operand_addr_tainted(uop);
                if let Some(d) = uop.dst {
                    self.set_reg(d, t);
                }
            }
            UopKind::Ld | UopKind::VLd | UopKind::Pop => {
                ev.tainted_address = self.mem_operand_addr_tainted(uop);
                let len = uop.mem.map_or(8, |m| m.width.bytes());
                let data_t = ea.is_some_and(|a| self.memory_tainted(a, len));
                ev.loaded_tainted_data = data_t;
                if let Some(d) = uop.dst {
                    self.set_reg(d, data_t || ev.tainted_address);
                }
            }
            UopKind::St | UopKind::VSt | UopKind::Push => {
                ev.tainted_address = self.mem_operand_addr_tainted(uop);
                let t = src_taint(self);
                // Push without an explicit mem operand writes 8 bytes.
                // Addresses wrap: a wild store near u64::MAX is still an
                // executable program, and the taint set must follow the
                // same wrapping the data write performs.
                if let Some(a) = ea {
                    let len = uop.mem.map_or(8, |m| m.width.bytes());
                    for b in (0..len).map(|i| a.wrapping_add(i)) {
                        if t {
                            self.mem.insert(b);
                        } else {
                            self.mem.remove(&b);
                        }
                    }
                }
            }
            UopKind::PushImm => {
                if let Some(a) = ea {
                    for b in (0..8).map(|i| a.wrapping_add(i)) {
                        self.mem.remove(&b);
                    }
                }
            }
            UopKind::Br(_) => {
                ev.tainted_branch = self.flags;
            }
            UopKind::JmpImm => {}
            UopKind::JmpReg => {
                ev.tainted_branch = uop.src1.is_some_and(|r| self.reg_tainted(r));
            }
            UopKind::Wrmsr | UopKind::Rdmsr => {
                if let Some(d) = uop.dst {
                    self.set_reg(d, false);
                }
            }
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_uops::UMem;
    use mx86_isa::{AluOp, Cc, Width};

    fn ld(dst: UReg, addr: u64) -> Uop {
        Uop::new(UopKind::Ld)
            .dst(dst)
            .mem(UMem::abs(addr, Width::B8))
    }

    #[test]
    fn load_of_tainted_data_taints_register() {
        let mut d = Dift::new();
        d.taint_memory(AddrRange::new(0x100, 0x108));
        let ev = d.propagate(&ld(UReg::Gpr(Gpr::Rax), 0x100), Some(0x100));
        assert!(ev.loaded_tainted_data);
        assert!(!ev.tainted_address);
        assert!(d.reg_tainted(UReg::Gpr(Gpr::Rax)));
    }

    #[test]
    fn alu_unions_taint_and_taints_flags() {
        let mut d = Dift::new();
        d.taint_reg(UReg::Gpr(Gpr::Rbx));
        let add = Uop::new(UopKind::Alu(AluOp::Add))
            .dst(UReg::Gpr(Gpr::Rax))
            .src1(UReg::Gpr(Gpr::Rax))
            .src2(UReg::Gpr(Gpr::Rbx));
        d.propagate(&add, None);
        assert!(d.reg_tainted(UReg::Gpr(Gpr::Rax)));
        assert!(d.flags_tainted());
    }

    #[test]
    fn tainted_index_register_flags_tainted_address() {
        let mut d = Dift::new();
        d.taint_reg(UReg::Gpr(Gpr::Rcx));
        let u = Uop::new(UopKind::Ld).dst(UReg::Tmp(0)).mem(UMem {
            base: Some(UReg::Gpr(Gpr::Rbx)),
            index: Some((UReg::Gpr(Gpr::Rcx), mx86_isa::Scale::S4)),
            disp: 0,
            width: Width::B4,
        });
        let ev = d.propagate(&u, Some(0x9999));
        assert!(ev.tainted_address, "key-dependent table index");
        assert!(ev.triggers_stealth());
    }

    #[test]
    fn tainted_compare_then_branch_is_tainted_branch() {
        let mut d = Dift::new();
        d.taint_reg(UReg::Gpr(Gpr::Rax));
        let cmp = Uop::new(UopKind::Alu(AluOp::Sub))
            .src1(UReg::Gpr(Gpr::Rax))
            .imm(0);
        d.propagate(&cmp, None);
        let br = Uop::new(UopKind::Br(Cc::Ne)).imm(0x40);
        let ev = d.propagate(&br, None);
        assert!(ev.tainted_branch);
        assert!(ev.triggers_stealth());
    }

    #[test]
    fn untainted_branch_does_not_trigger() {
        let mut d = Dift::new();
        let cmp = Uop::new(UopKind::Alu(AluOp::Sub))
            .src1(UReg::Gpr(Gpr::Rax))
            .imm(0);
        d.propagate(&cmp, None);
        let br = Uop::new(UopKind::Br(Cc::Ne)).imm(0x40);
        assert!(!d.propagate(&br, None).triggers_stealth());
    }

    #[test]
    fn store_propagates_taint_to_memory_and_back() {
        let mut d = Dift::new();
        d.taint_reg(UReg::Gpr(Gpr::Rdx));
        let st = Uop::new(UopKind::St)
            .src1(UReg::Gpr(Gpr::Rdx))
            .mem(UMem::abs(0x200, Width::B8));
        d.propagate(&st, Some(0x200));
        assert!(d.memory_tainted(0x200, 8));
        let ev = d.propagate(&ld(UReg::Gpr(Gpr::Rsi), 0x200), Some(0x200));
        assert!(ev.loaded_tainted_data);
    }

    #[test]
    fn untainted_store_clears_memory_taint() {
        let mut d = Dift::new();
        d.taint_memory(AddrRange::new(0x300, 0x308));
        let st = Uop::new(UopKind::St)
            .src1(UReg::Gpr(Gpr::Rax))
            .mem(UMem::abs(0x300, Width::B8));
        d.propagate(&st, Some(0x300));
        assert!(!d.memory_tainted(0x300, 8));
    }

    #[test]
    fn mov_imm_clears_taint() {
        let mut d = Dift::new();
        d.taint_reg(UReg::Gpr(Gpr::Rax));
        let mi = Uop::new(UopKind::MovImm).dst(UReg::Gpr(Gpr::Rax)).imm(0);
        d.propagate(&mi, None);
        assert!(!d.reg_tainted(UReg::Gpr(Gpr::Rax)));
    }

    #[test]
    fn decoy_uops_do_not_propagate() {
        let mut d = Dift::new();
        d.taint_memory(AddrRange::new(0x100, 0x140));
        let decoy = Uop::new(UopKind::Ld)
            .dst(UReg::Tmp(1))
            .mem(UMem::abs(0x100, Width::B1))
            .decoy();
        let ev = d.propagate(&decoy, Some(0x100));
        assert_eq!(ev, TaintEvent::default());
        assert!(!d.reg_tainted(UReg::Tmp(1)));
    }

    #[test]
    fn disabled_dift_reports_nothing() {
        let mut d = Dift::new();
        d.taint_memory(AddrRange::new(0x100, 0x108));
        d.set_enabled(false);
        let ev = d.propagate(&ld(UReg::Gpr(Gpr::Rax), 0x100), Some(0x100));
        assert!(!ev.loaded_tainted_data);
        assert!(!d.reg_tainted(UReg::Gpr(Gpr::Rax)));
        assert!(!d.memory_tainted(0x100, 8));
    }

    #[test]
    fn untaint_memory_removes_source() {
        let mut d = Dift::new();
        d.taint_memory(AddrRange::new(0x100, 0x110));
        assert_eq!(d.tainted_bytes(), 16);
        d.untaint_memory(AddrRange::new(0x100, 0x108));
        assert!(!d.memory_tainted(0x100, 8));
        assert!(d.memory_tainted(0x108, 8));
    }
}
