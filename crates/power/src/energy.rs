//! Per-unit energy accounting.

use crate::gating::GatingParams;
use csd_telemetry::{Json, ToJson};

/// A power-accounted unit of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// The vector processing unit (SIMD execution array) — the gating
    /// target of the paper's second case study.
    Vpu,
    /// Scalar integer ALUs.
    ScalarAlu,
    /// Load/store unit (AGU + L1D access energy).
    Lsu,
    /// Legacy decode pipeline (length decoder + decoders + MSROM).
    LegacyDecode,
    /// Micro-op cache (delivering already-translated µops).
    UopCache,
    /// Everything else (rename, ROB, scheduler, commit, register files),
    /// charged per µop plus a base leakage.
    Core,
}

impl Unit {
    /// All units, in stable order.
    pub const ALL: [Unit; 6] = [
        Unit::Vpu,
        Unit::ScalarAlu,
        Unit::Lsu,
        Unit::LegacyDecode,
        Unit::UopCache,
        Unit::Core,
    ];

    /// Stable index in `0..6`.
    pub const fn index(self) -> usize {
        match self {
            Unit::Vpu => 0,
            Unit::ScalarAlu => 1,
            Unit::Lsu => 2,
            Unit::LegacyDecode => 3,
            Unit::UopCache => 4,
            Unit::Core => 5,
        }
    }

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Unit::Vpu => "vpu",
            Unit::ScalarAlu => "scalar-alu",
            Unit::Lsu => "lsu",
            Unit::LegacyDecode => "legacy-decode",
            Unit::UopCache => "uop-cache",
            Unit::Core => "core",
        }
    }
}

/// Energy constants for one unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitEnergy {
    /// Dynamic energy per operation, picojoules.
    pub dyn_pj_per_op: f64,
    /// Leakage energy per (un-gated) cycle, picojoules.
    pub leak_pj_cycle: f64,
}

/// Energy constants for the whole core (32 nm-class magnitudes).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Per-unit constants, indexed by [`Unit::index`].
    pub units: [UnitEnergy; 6],
    /// Gating model for the VPU.
    pub vpu_gating: GatingParams,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        let mut units = [UnitEnergy {
            dyn_pj_per_op: 0.0,
            leak_pj_cycle: 0.0,
        }; 6];
        units[Unit::Vpu.index()] = UnitEnergy {
            dyn_pj_per_op: 60.0,
            leak_pj_cycle: 36.0,
        };
        units[Unit::ScalarAlu.index()] = UnitEnergy {
            dyn_pj_per_op: 7.0,
            leak_pj_cycle: 6.0,
        };
        units[Unit::Lsu.index()] = UnitEnergy {
            dyn_pj_per_op: 25.0,
            leak_pj_cycle: 8.0,
        };
        units[Unit::LegacyDecode.index()] = UnitEnergy {
            dyn_pj_per_op: 10.0,
            leak_pj_cycle: 4.0,
        };
        units[Unit::UopCache.index()] = UnitEnergy {
            dyn_pj_per_op: 3.0,
            leak_pj_cycle: 2.0,
        };
        units[Unit::Core.index()] = UnitEnergy {
            dyn_pj_per_op: 6.0,
            leak_pj_cycle: 45.0,
        };
        EnergyParams {
            units,
            vpu_gating: GatingParams::default(),
        }
    }
}

/// Activity counters accumulated by a simulation, consumed by
/// [`EnergyModel::breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Activity {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Operations charged to each unit, indexed by [`Unit::index`].
    pub ops: [u64; 6],
    /// Cycles during which the VPU was power-gated.
    pub vpu_gated_cycles: u64,
    /// Number of gate/ungate pairs the VPU went through.
    pub vpu_gate_transitions: u64,
}

impl Activity {
    /// A fresh activity record over `cycles` cycles.
    pub fn new(cycles: u64) -> Activity {
        Activity {
            cycles,
            ..Activity::default()
        }
    }

    /// Adds `n` operations to `unit`.
    pub fn add_ops(&mut self, unit: Unit, n: u64) {
        self.ops[unit.index()] += n;
    }

    /// Operations charged to `unit`.
    pub fn ops(&self, unit: Unit) -> u64 {
        self.ops[unit.index()]
    }

    /// Accumulates another activity record into this one.
    pub fn merge(&mut self, other: &Activity) {
        self.cycles += other.cycles;
        for i in 0..self.ops.len() {
            self.ops[i] += other.ops[i];
        }
        self.vpu_gated_cycles += other.vpu_gated_cycles;
        self.vpu_gate_transitions += other.vpu_gate_transitions;
    }
}

impl ToJson for Activity {
    fn to_json(&self) -> Json {
        let mut ops = Json::Obj(Vec::new());
        for u in Unit::ALL {
            ops.push_member(u.name(), Json::from(self.ops(u)));
        }
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("ops", ops),
            ("vpu_gated_cycles", Json::from(self.vpu_gated_cycles)),
            (
                "vpu_gate_transitions",
                Json::from(self.vpu_gate_transitions),
            ),
        ])
    }
}

/// Per-unit energy totals, picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Dynamic energy per unit, indexed by [`Unit::index`].
    pub dynamic_pj: [f64; 6],
    /// Leakage energy per unit.
    pub leakage_pj: [f64; 6],
    /// Gate/ungate switching overhead (VPU).
    pub gating_overhead_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj.iter().sum::<f64>()
            + self.leakage_pj.iter().sum::<f64>()
            + self.gating_overhead_pj
    }

    /// Dynamic energy of one unit.
    pub fn dynamic(&self, u: Unit) -> f64 {
        self.dynamic_pj[u.index()]
    }

    /// Leakage energy of one unit.
    pub fn leakage(&self, u: Unit) -> f64 {
        self.leakage_pj[u.index()]
    }
}

impl ToJson for EnergyBreakdown {
    fn to_json(&self) -> Json {
        let mut dynamic = Json::Obj(Vec::new());
        let mut leakage = Json::Obj(Vec::new());
        for u in Unit::ALL {
            dynamic.push_member(u.name(), Json::from(self.dynamic(u)));
            leakage.push_member(u.name(), Json::from(self.leakage(u)));
        }
        Json::obj([
            ("dynamic_pj", dynamic),
            ("leakage_pj", leakage),
            ("gating_overhead_pj", Json::from(self.gating_overhead_pj)),
            ("total_pj", Json::from(self.total_pj())),
        ])
    }
}

/// Converts activity counts into energy.
#[derive(Debug, Clone, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// A model with explicit parameters.
    pub fn new(params: EnergyParams) -> EnergyModel {
        EnergyModel { params }
    }

    /// The model's parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the energy breakdown for an activity record.
    ///
    /// The VPU leaks fully during un-gated cycles and residually (through
    /// the header transistor) during gated cycles; every other unit leaks
    /// for all cycles. Each gate/ungate pair is charged the Hu-model
    /// overhead.
    pub fn breakdown(&self, a: &Activity) -> EnergyBreakdown {
        let mut out = EnergyBreakdown::default();
        for u in Unit::ALL {
            let ue = self.params.units[u.index()];
            out.dynamic_pj[u.index()] = a.ops(u) as f64 * ue.dyn_pj_per_op;
            out.leakage_pj[u.index()] = match u {
                Unit::Vpu => {
                    let gated = a.vpu_gated_cycles.min(a.cycles) as f64;
                    let ungated = a.cycles as f64 - gated;
                    ungated * ue.leak_pj_cycle
                        + gated * ue.leak_pj_cycle * self.params.vpu_gating.header_leak_frac
                }
                _ => a.cycles as f64 * ue.leak_pj_cycle,
            };
        }
        out.gating_overhead_pj =
            a.vpu_gate_transitions as f64 * self.params.vpu_gating.overhead_pj();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_saves_vpu_leakage() {
        let m = EnergyModel::default();
        let mut never_gated = Activity::new(10_000);
        never_gated.add_ops(Unit::ScalarAlu, 5000);

        let mut gated = never_gated;
        gated.vpu_gated_cycles = 9_000;
        gated.vpu_gate_transitions = 1;

        let e0 = m.breakdown(&never_gated);
        let e1 = m.breakdown(&gated);
        assert!(e1.leakage(Unit::Vpu) < e0.leakage(Unit::Vpu));
        assert!(e1.total_pj() < e0.total_pj());
    }

    #[test]
    fn thrashing_transitions_cost_energy() {
        let m = EnergyModel::default();
        let mut few = Activity::new(10_000);
        few.vpu_gated_cycles = 5_000;
        few.vpu_gate_transitions = 2;
        let mut many = few;
        many.vpu_gate_transitions = 500;
        assert!(m.breakdown(&many).total_pj() > m.breakdown(&few).total_pj());
    }

    #[test]
    fn dynamic_scales_with_ops() {
        let m = EnergyModel::default();
        let mut a = Activity::new(100);
        a.add_ops(Unit::Vpu, 10);
        let e10 = m.breakdown(&a).dynamic(Unit::Vpu);
        a.add_ops(Unit::Vpu, 10);
        let e20 = m.breakdown(&a).dynamic(Unit::Vpu);
        assert!((e20 - 2.0 * e10).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Activity::new(10);
        a.add_ops(Unit::Lsu, 3);
        let mut b = Activity::new(20);
        b.add_ops(Unit::Lsu, 4);
        b.vpu_gated_cycles = 5;
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.ops(Unit::Lsu), 7);
        assert_eq!(a.vpu_gated_cycles, 5);
    }

    #[test]
    fn unit_indexing_is_stable() {
        for (i, u) in Unit::ALL.iter().enumerate() {
            assert_eq!(u.index(), i);
        }
    }
}
