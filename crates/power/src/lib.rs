//! # csd-power — unit-level energy accounting and power-gating model
//!
//! A McPAT-flavoured per-unit energy model (32 nm-class constants) plus the
//! power-gating overhead model the paper uses (Hu et al.):
//!
//! ```text
//! E_overhead ≈ 2 · W_H · (E_cycle / α)
//! ```
//!
//! where `W_H` is the ratio of sleep-transistor area to unit area (the
//! paper uses the conservative 0.20 end of the 0.05–0.20 literature range)
//! and `E_cycle/α` is the unit's per-cycle switching energy at activity
//! factor 1. The *break-even time* is the number of gated cycles needed for
//! saved leakage to amortize one on/off pair, and the VPU wake latency is
//! 30 cycles (Laurenzano et al.), during which CSD keeps executing
//! devectorized µops instead of stalling.
//!
//! Absolute joules are calibrated to plausible 32 nm magnitudes, not to the
//! authors' exact McPAT tables (unavailable); all paper results consumed
//! from this model are *relative* (normalized energy, percentage savings),
//! which the shape of the model preserves.
//!
//! ```
//! use csd_power::{EnergyModel, Activity, Unit};
//!
//! let model = EnergyModel::default();
//! let mut a = Activity::new(1_000);
//! a.add_ops(Unit::ScalarAlu, 800);
//! let e = model.breakdown(&a);
//! assert!(e.total_pj() > 0.0);
//! ```

#![warn(missing_docs)]

mod energy;
mod gating;

pub use energy::{Activity, EnergyBreakdown, EnergyModel, EnergyParams, Unit, UnitEnergy};
pub use gating::{GatingParams, VPU_WAKE_CYCLES};
