//! Power-gating overhead model (Hu et al. / Laurenzano et al.).

/// Cycles needed to power the vector unit back on (Laurenzano et al.,
/// as adopted by the paper).
pub const VPU_WAKE_CYCLES: u64 = 30;

/// Parameters of the sleep-transistor gating model for one unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingParams {
    /// Ratio of sleep-transistor area to unit area (`W_H`). The paper uses
    /// a conservative 0.20; literature spans 0.05–0.20.
    pub w_h: f64,
    /// Per-cycle switching energy of the unit at activity factor 1
    /// (`E_cycle / α`), in picojoules.
    pub e_cycle_alpha_pj: f64,
    /// Unit leakage energy per un-gated cycle, in picojoules.
    pub leak_pj_cycle: f64,
    /// Residual leakage through the header transistor while gated, as a
    /// fraction of normal leakage.
    pub header_leak_frac: f64,
    /// Cycles from the wake decision until the unit is usable.
    pub wake_cycles: u64,
}

impl Default for GatingParams {
    fn default() -> GatingParams {
        GatingParams {
            w_h: 0.20,
            e_cycle_alpha_pj: 200.0,
            leak_pj_cycle: 36.0,
            header_leak_frac: 0.10,
            wake_cycles: VPU_WAKE_CYCLES,
        }
    }
}

impl GatingParams {
    /// Energy overhead of one gate/ungate pair:
    /// `E_overhead ≈ 2 · W_H · E_cycle/α` (picojoules).
    pub fn overhead_pj(&self) -> f64 {
        2.0 * self.w_h * self.e_cycle_alpha_pj
    }

    /// Leakage saved per gated cycle (normal minus residual header
    /// leakage), in picojoules.
    pub fn saved_pj_per_gated_cycle(&self) -> f64 {
        self.leak_pj_cycle * (1.0 - self.header_leak_frac)
    }

    /// Break-even time: gated cycles needed so that saved leakage equals
    /// the on/off overhead. Gating intervals shorter than this *cost*
    /// energy.
    pub fn break_even_cycles(&self) -> u64 {
        (self.overhead_pj() / self.saved_pj_per_gated_cycle()).ceil() as u64
    }

    /// Net energy effect (positive = saved) of one gating interval of
    /// `gated_cycles`, in picojoules.
    pub fn interval_net_pj(&self, gated_cycles: u64) -> f64 {
        gated_cycles as f64 * self.saved_pj_per_gated_cycle() - self.overhead_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_follows_hu_equation() {
        let g = GatingParams::default();
        assert!((g.overhead_pj() - 2.0 * 0.20 * 200.0).abs() < 1e-9);
    }

    #[test]
    fn break_even_is_positive_and_consistent() {
        let g = GatingParams::default();
        let be = g.break_even_cycles();
        assert!(be >= 1);
        assert!(g.interval_net_pj(be) >= 0.0);
        assert!(g.interval_net_pj(be.saturating_sub(1)) < 0.0);
    }

    #[test]
    fn short_intervals_lose_energy() {
        let g = GatingParams::default();
        assert!(g.interval_net_pj(0) < 0.0);
        assert!(g.interval_net_pj(100_000) > 0.0);
    }

    #[test]
    fn higher_wh_raises_break_even() {
        let lo = GatingParams {
            w_h: 0.05,
            ..GatingParams::default()
        };
        let hi = GatingParams {
            w_h: 0.20,
            ..GatingParams::default()
        };
        assert!(hi.break_even_cycles() >= lo.break_even_cycles());
    }
}
