//! Property-based tests for cache and hierarchy invariants, driven by the
//! workspace's deterministic PRNG (`csd-telemetry`) instead of an external
//! framework: each property runs against a few hundred seeded random
//! cases, and a failing case's number identifies its seed.

use csd_cache::{
    AccessKind, Cache, CacheConfig, Hierarchy, HierarchyConfig, HitLevel, Replacement,
};
use csd_telemetry::SplitMix64;

const CASES: u64 = 64;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 2048,
        ways: 4,
        line_bytes: 64,
        latency: 1,
        replacement: Replacement::Lru,
    })
}

fn addr_vec(rng: &mut SplitMix64, max: u64, lo: usize, hi: usize) -> Vec<u64> {
    let n = rng.range_usize(lo, hi);
    (0..n).map(|_| rng.range_u64(0, max)).collect()
}

/// A fill makes the line present; presence implies the next access to
/// any byte of the line hits.
#[test]
fn fill_then_hit() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF111 + case);
        let addrs = addr_vec(&mut rng, 1 << 16, 1, 200);
        let mut c = small_cache();
        for &a in &addrs {
            if !c.access(a, false) {
                c.fill(a, false);
            }
            assert!(c.contains(a), "case {case}: {a:#x} absent after fill");
            let same_line = (a & !0x3F) | (rng.range_u64(0, 64) & 0x3F);
            assert!(
                c.access(same_line, false),
                "case {case}: same line must hit"
            );
        }
    }
}

/// A set never holds more lines than its associativity.
#[test]
fn associativity_is_respected() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA550 + case);
        let addrs = addr_vec(&mut rng, 1 << 16, 1, 300);
        let mut c = small_cache();
        for &a in &addrs {
            c.fill(a, false);
            assert!(
                c.lines_in_set(a).len() <= 4,
                "case {case}: set overflow at {a:#x}"
            );
        }
    }
}

/// Flushing a line removes exactly that line.
#[test]
fn flush_is_precise() {
    for case in 0..CASES * 4 {
        let mut rng = SplitMix64::new(0xF105 ^ case);
        let a = rng.range_u64(0, 1 << 16);
        let b = rng.range_u64(0, 1 << 16);
        let mut c = small_cache();
        c.fill(a, false);
        c.fill(b, false);
        c.flush_line(a);
        assert!(!c.contains(a), "case {case}");
        let same_line = (a & !0x3F) == (b & !0x3F);
        if !same_line {
            assert!(c.contains(b), "case {case}: flush of {a:#x} evicted {b:#x}");
        }
    }
}

/// Hierarchy latencies are strictly ordered by hit level, and a repeated
/// access never hits *further away* than the first.
#[test]
fn latency_monotonicity() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A7 + case);
        let addrs = addr_vec(&mut rng, 1 << 20, 1, 100);
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &addrs {
            let first = h.access(a, AccessKind::DataRead);
            let second = h.access(a, AccessKind::DataRead);
            assert_eq!(
                second.level,
                HitLevel::L1,
                "case {case}: fill must promote to L1"
            );
            assert!(second.latency <= first.latency, "case {case}");
        }
    }
}

/// `clflush` purges every level, for any prior access pattern.
#[test]
fn flush_purges_everywhere() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF75 + case);
        let warm = addr_vec(&mut rng, 1 << 16, 0, 50);
        let victim = rng.range_u64(0, 1 << 16);
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &warm {
            h.access(a, AccessKind::DataRead);
        }
        h.access(victim, AccessKind::DataRead);
        h.flush(victim);
        assert!(!h.present_anywhere(victim), "case {case}");
        let r = h.access(victim, AccessKind::DataRead);
        assert_eq!(r.level, HitLevel::Memory, "case {case}");
    }
}

/// Stats conservation: `hits + misses == accesses` at every level, for
/// arbitrary read/write mixes.
#[test]
fn stats_conserve() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x57A7 + case);
        let addrs = addr_vec(&mut rng, 1 << 18, 1, 200);
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &addrs {
            let kind = if a % 3 == 0 {
                AccessKind::DataWrite
            } else {
                AccessKind::DataRead
            };
            h.access(a, kind);
        }
        let s = h.stats();
        for lvl in [s.l1i, s.l1d, s.l2, s.llc] {
            assert_eq!(lvl.hits + lvl.misses, lvl.accesses, "case {case}");
        }
    }
}
