//! Property-based tests for cache and hierarchy invariants.

use csd_cache::{AccessKind, Cache, CacheConfig, Hierarchy, HierarchyConfig, HitLevel, Replacement};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 2048,
        ways: 4,
        line_bytes: 64,
        latency: 1,
        replacement: Replacement::Lru,
    })
}

proptest! {
    /// A fill makes the line present; presence implies the next access to
    /// any byte of the line hits.
    #[test]
    fn fill_then_hit(addrs in proptest::collection::vec(0u64..1 << 16, 1..200)) {
        let mut c = small_cache();
        for &a in &addrs {
            if !c.access(a, false) {
                c.fill(a, false);
            }
            prop_assert!(c.contains(a));
            prop_assert!(c.access(a ^ 0x3F & 0x3F | (a & !0x3F), false),
                "same line must hit");
        }
    }

    /// A set never holds more lines than its associativity.
    #[test]
    fn associativity_is_respected(addrs in proptest::collection::vec(0u64..1 << 16, 1..300)) {
        let mut c = small_cache();
        for &a in &addrs {
            c.fill(a, false);
            prop_assert!(c.lines_in_set(a).len() <= 4);
        }
    }

    /// Flushing a line removes exactly that line.
    #[test]
    fn flush_is_precise(a in 0u64..1 << 16, b in 0u64..1 << 16) {
        let mut c = small_cache();
        c.fill(a, false);
        c.fill(b, false);
        c.flush_line(a);
        prop_assert!(!c.contains(a));
        let same_line = (a & !0x3F) == (b & !0x3F);
        if !same_line {
            prop_assert!(c.contains(b));
        }
    }

    /// Hierarchy latencies are strictly ordered by hit level, and a
    /// repeated access never hits *further away* than the first.
    #[test]
    fn latency_monotonicity(addrs in proptest::collection::vec(0u64..1 << 20, 1..100)) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &addrs {
            let first = h.access(a, AccessKind::DataRead);
            let second = h.access(a, AccessKind::DataRead);
            prop_assert_eq!(second.level, HitLevel::L1, "fill must promote to L1");
            prop_assert!(second.latency <= first.latency);
        }
    }

    /// `clflush` purges every level, for any prior access pattern.
    #[test]
    fn flush_purges_everywhere(
        warm in proptest::collection::vec(0u64..1 << 16, 0..50),
        victim in 0u64..1 << 16,
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &warm {
            h.access(a, AccessKind::DataRead);
        }
        h.access(victim, AccessKind::DataRead);
        h.flush(victim);
        prop_assert!(!h.present_anywhere(victim));
        let r = h.access(victim, AccessKind::DataRead);
        prop_assert_eq!(r.level, HitLevel::Memory);
    }

    /// Stats conservation: hits + misses == accesses at every level.
    #[test]
    fn stats_conserve(addrs in proptest::collection::vec(0u64..1 << 18, 1..200)) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &addrs {
            let kind = if a % 3 == 0 { AccessKind::DataWrite } else { AccessKind::DataRead };
            h.access(a, kind);
        }
        let s = h.stats();
        for lvl in [s.l1d, s.l2, s.llc] {
            prop_assert_eq!(lvl.hits + lvl.misses, lvl.accesses);
        }
    }
}
