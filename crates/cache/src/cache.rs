//! A single set-associative cache.

use crate::replacement::{Replacement, SetState};
use crate::stats::CacheStats;

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub latency: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets or
    /// line size, or capacity not divisible by `ways * line_bytes`).
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(
            sets * self.ways * self.line_bytes == self.size_bytes,
            "capacity not divisible by ways*line"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// A set-associative cache tracking line presence (not data).
///
/// Addresses are byte addresses; the cache computes its own set/tag split.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    repl: Vec<SetState>,
    stats: CacheStats,
    set_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        let repl = (0..sets)
            .map(|i| SetState::new(cfg.replacement, cfg.ways, 0x9E37_79B9_7F4A_7C15 ^ i as u64))
            .collect();
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.ways],
            repl,
            stats: CacheStats::default(),
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The set index for an address.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.set_shift + self.sets.trailing_zeros())
    }

    /// The base address of the line containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !((self.cfg.line_bytes as u64) - 1)
    }

    fn find(&self, addr: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways)
            .map(|w| base + w)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Looks up `addr`; on a hit, updates replacement state and dirtiness.
    /// Returns whether the access hit. Does **not** fill on miss — callers
    /// fill explicitly via [`Cache::fill`] so multi-level logic stays
    /// outside the cache.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.stats.accesses += 1;
        match self.find(addr) {
            Some(i) => {
                self.stats.hits += 1;
                let set = self.set_of(addr);
                let way = i - set * self.cfg.ways;
                self.repl[set].touch(way);
                if write {
                    self.lines[i].dirty = true;
                }
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Checks presence without perturbing replacement state or stats.
    pub fn contains(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Inserts the line containing `addr`, evicting if necessary.
    /// Returns the base address of the evicted line, if a valid line was
    /// displaced (used for back-invalidation / write-back modeling).
    pub fn fill(&mut self, addr: u64, write: bool) -> Option<u64> {
        if let Some(i) = self.find(addr) {
            // Already present (e.g. filled by a racing path) — refresh.
            if write {
                self.lines[i].dirty = true;
            }
            return None;
        }
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        // Prefer an invalid way.
        let way = (0..self.cfg.ways)
            .find(|&w| !self.lines[base + w].valid)
            .unwrap_or_else(|| self.repl[set].victim(self.cfg.ways));
        let idx = base + way;
        let evicted = if self.lines[idx].valid {
            self.stats.evictions += 1;
            Some(self.addr_of(set, self.lines[idx].tag))
        } else {
            None
        };
        self.lines[idx] = Line {
            valid: true,
            dirty: write,
            tag,
        };
        self.repl[set].touch(way);
        evicted
    }

    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        (tag << (self.set_shift + self.sets.trailing_zeros())) | ((set as u64) << self.set_shift)
    }

    /// Removes the line containing `addr`. Returns whether it was present.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.lines[i] = Line::default();
                self.stats.flushes += 1;
                true
            }
            None => false,
        }
    }

    /// Invalidates the entire cache.
    pub fn flush_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Addresses of all valid lines currently in the set containing `addr`.
    pub fn lines_in_set(&self, addr: u64) -> Vec<u64> {
        let set = self.set_of(addr);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways)
            .filter(|&w| self.lines[base + w].valid)
            .map(|w| self.addr_of(set, self.lines[base + w].tag))
            .collect()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
            replacement: Replacement::Lru,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000, false));
        c.fill(0x1000, false);
        assert!(c.access(0x1000, false));
        assert!(c.access(0x103f, false), "same line");
        assert!(!c.access(0x1040, false), "next line");
    }

    #[test]
    fn eviction_returns_victim_address() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets*line = 256).
        c.fill(0x0, false);
        c.fill(0x100, false);
        let evicted = c.fill(0x200, false);
        assert_eq!(evicted, Some(0x0), "LRU victim");
        assert!(!c.contains(0x0));
        assert!(c.contains(0x100) && c.contains(0x200));
    }

    #[test]
    fn hit_refreshes_lru() {
        let mut c = small();
        c.fill(0x0, false);
        c.fill(0x100, false);
        assert!(c.access(0x0, false)); // refresh 0x0; 0x100 becomes LRU
        let evicted = c.fill(0x200, false);
        assert_eq!(evicted, Some(0x100));
    }

    #[test]
    fn flush_removes_line() {
        let mut c = small();
        c.fill(0x40, false);
        assert!(c.flush_line(0x7f), "flush by any addr within the line");
        assert!(!c.contains(0x40));
        assert!(!c.flush_line(0x40), "already gone");
    }

    #[test]
    fn contains_does_not_perturb() {
        let mut c = small();
        c.fill(0x0, false);
        c.fill(0x100, false);
        // Probing 0x0 must NOT refresh it.
        assert!(c.contains(0x0));
        let evicted = c.fill(0x200, false);
        assert_eq!(evicted, Some(0x0));
    }

    #[test]
    fn stats_track_accesses() {
        let mut c = small();
        c.access(0x0, false);
        c.fill(0x0, false);
        c.access(0x0, false);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lines_in_set_reports_contents() {
        let mut c = small();
        c.fill(0x0, false);
        c.fill(0x100, false);
        let mut lines = c.lines_in_set(0x200);
        lines.sort_unstable();
        assert_eq!(lines, vec![0x0, 0x100]);
    }

    #[test]
    fn sets_geometry() {
        assert_eq!(small().config().sets(), 4);
        let l1 = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 4,
            replacement: Replacement::Lru,
        };
        assert_eq!(l1.sets(), 64);
    }
}
