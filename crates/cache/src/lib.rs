//! # csd-cache — set-associative cache models and the memory hierarchy
//!
//! Timing- and state-accurate (but data-oblivious) cache models for the CSD
//! reproduction. Caches track *which lines are present*, their replacement
//! state, and dirtiness; actual data contents live in the simulator's flat
//! memory. This is exactly the fidelity cache side-channel experiments
//! need: PRIME+PROBE and FLUSH+RELOAD observe presence and latency, never
//! contents.
//!
//! The [`Hierarchy`] mirrors the paper's baseline (Table I analogue):
//! split 32 KiB L1I/L1D, unified 256 KiB L2, 2 MiB LLC, with `clflush`
//! support that removes a line from every level (the primitive behind
//! FLUSH+RELOAD).
//!
//! ```
//! use csd_cache::{Hierarchy, HierarchyConfig, AccessKind};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::default());
//! let miss = h.access(0x1000, AccessKind::DataRead);
//! let hit = h.access(0x1000, AccessKind::DataRead);
//! assert!(miss.latency > hit.latency);
//! assert_eq!(hit.level, csd_cache::HitLevel::L1);
//! ```

#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod replacement;
mod stats;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{AccessKind, AccessResult, Hierarchy, HierarchyConfig, HitLevel};
pub use replacement::Replacement;
pub use stats::{CacheStats, HierarchyStats};
