//! Replacement policies.

/// The replacement policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU (as used by real L1 designs).
    TreePlru,
    /// Pseudo-random (deterministic xorshift sequence).
    Random,
}

/// Per-set replacement state.
#[derive(Debug, Clone)]
pub(crate) enum SetState {
    /// Recency stamps per way (higher = more recent).
    Lru { stamps: Vec<u64>, clock: u64 },
    /// PLRU tree bits; `ways` must be a power of two.
    TreePlru { bits: Vec<bool> },
    /// Xorshift state.
    Random { state: u64 },
}

impl SetState {
    pub(crate) fn new(policy: Replacement, ways: usize, seed: u64) -> SetState {
        match policy {
            Replacement::Lru => SetState::Lru {
                stamps: vec![0; ways],
                clock: 0,
            },
            Replacement::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires a power-of-two way count"
                );
                SetState::TreePlru {
                    bits: vec![false; ways.max(2) - 1],
                }
            }
            Replacement::Random => SetState::Random { state: seed | 1 },
        }
    }

    /// Records a touch (hit or fill) of `way`.
    pub(crate) fn touch(&mut self, way: usize) {
        match self {
            SetState::Lru { stamps, clock } => {
                *clock += 1;
                stamps[way] = *clock;
            }
            SetState::TreePlru { bits } => {
                // Walk from the root; at each node, point *away* from the
                // touched way.
                let ways = bits.len() + 1;
                let mut node = 0;
                let mut lo = 0;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        bits[node] = true; // protect left: next victim right
                        node = 2 * node + 1;
                        hi = mid;
                    } else {
                        bits[node] = false;
                        node = 2 * node + 2;
                        lo = mid;
                    }
                }
            }
            SetState::Random { .. } => {}
        }
    }

    /// Chooses a victim way among `ways` candidates.
    pub(crate) fn victim(&mut self, ways: usize) -> usize {
        match self {
            SetState::Lru { stamps, .. } => {
                let mut best = 0;
                for w in 1..ways {
                    if stamps[w] < stamps[best] {
                        best = w;
                    }
                }
                best
            }
            SetState::TreePlru { bits } => {
                let mut node = 0;
                let mut lo = 0;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits[node] {
                        // true = left protected → victim on the right
                        node = 2 * node + 2;
                        lo = mid;
                    } else {
                        node = 2 * node + 1;
                        hi = mid;
                    }
                }
                lo
            }
            SetState::Random { state } => {
                // xorshift64*
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % ways as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = SetState::new(Replacement::Lru, 4, 0);
        for w in 0..4 {
            s.touch(w);
        }
        s.touch(0); // 1 is now LRU
        assert_eq!(s.victim(4), 1);
    }

    #[test]
    fn plru_victim_avoids_recent() {
        let mut s = SetState::new(Replacement::TreePlru, 8, 0);
        for w in 0..8 {
            s.touch(w);
        }
        let v = s.victim(8);
        // The most recently touched way (7) must not be the victim.
        assert_ne!(v, 7);
    }

    #[test]
    fn plru_full_set_cycles_through_all_ways() {
        // Repeatedly touching the victim must eventually visit every way.
        let mut s = SetState::new(Replacement::TreePlru, 4, 0);
        let mut seen = [false; 4];
        for _ in 0..16 {
            let v = s.victim(4);
            seen[v] = true;
            s.touch(v);
        }
        assert!(seen.iter().all(|&b| b), "victims: {seen:?}");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = SetState::new(Replacement::Random, 8, 42);
        let mut b = SetState::new(Replacement::Random, 8, 42);
        let va: Vec<usize> = (0..10).map(|_| a.victim(8)).collect();
        let vb: Vec<usize> = (0..10).map(|_| b.victim(8)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().any(|&v| v != va[0]), "degenerate sequence");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = SetState::new(Replacement::TreePlru, 6, 0);
    }
}
