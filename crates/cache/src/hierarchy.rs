//! The multi-level memory hierarchy.

use crate::cache::{Cache, CacheConfig};
use crate::replacement::Replacement;
use crate::stats::HierarchyStats;

/// What kind of access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1I path).
    InstFetch,
    /// Data read (L1D path).
    DataRead,
    /// Data write (L1D path, write-allocate).
    DataWrite,
}

impl AccessKind {
    /// Whether this is a write.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::DataWrite)
    }
}

/// The level at which an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// First-level cache (L1I or L1D).
    L1,
    /// Unified second level.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Memory,
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles.
    pub latency: u64,
    /// Where the access was satisfied.
    pub level: HitLevel,
}

impl AccessResult {
    /// Whether the access hit in the first-level cache.
    pub fn l1_hit(&self) -> bool {
        self.level == HitLevel::L1
    }
}

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Main-memory access latency in cycles.
    pub memory_latency: u64,
    /// Whether the LLC is inclusive of the upper levels (evicting a line
    /// from the LLC back-invalidates L1/L2 copies).
    pub inclusive_llc: bool,
}

impl Default for HierarchyConfig {
    /// The paper's Sandy-Bridge-style baseline: 32 KiB 8-way L1I/L1D
    /// (4-cycle), 256 KiB 8-way L2 (12-cycle), 2 MiB 16-way LLC (30-cycle),
    /// 200-cycle memory, inclusive LLC, 64 B lines throughout.
    fn default() -> HierarchyConfig {
        let line = 64;
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: line,
                latency: 4,
                replacement: Replacement::Lru,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: line,
                latency: 4,
                replacement: Replacement::Lru,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: line,
                latency: 12,
                replacement: Replacement::Lru,
            },
            llc: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                line_bytes: line,
                latency: 30,
                replacement: Replacement::Lru,
            },
            memory_latency: 200,
            inclusive_llc: true,
        }
    }
}

/// A three-level write-back memory hierarchy with `clflush` support.
///
/// Models line presence and timing. Victim and attacker programs that share
/// a core (time-sliced, as in same-core PRIME+PROBE) or a package
/// (FLUSH+RELOAD through the shared LLC) access the *same* hierarchy, which
/// is what makes the side channels — and the decoy defenses — observable.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    memory_accesses: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            llc: Cache::new(cfg.llc),
            memory_accesses: 0,
            cfg,
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Performs an access, filling all levels on the way back.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        let write = kind.is_write();
        let l1 = match kind {
            AccessKind::InstFetch => &mut self.l1i,
            _ => &mut self.l1d,
        };
        let mut latency = l1.config().latency;
        if l1.access(addr, write) {
            return AccessResult {
                latency,
                level: HitLevel::L1,
            };
        }
        latency += self.l2.config().latency;
        if self.l2.access(addr, write) {
            self.fill_l1(addr, kind, write);
            return AccessResult {
                latency,
                level: HitLevel::L2,
            };
        }
        latency += self.llc.config().latency;
        if self.llc.access(addr, write) {
            self.l2.fill(addr, write);
            self.fill_l1(addr, kind, write);
            return AccessResult {
                latency,
                level: HitLevel::Llc,
            };
        }
        latency += self.cfg.memory_latency;
        self.memory_accesses += 1;
        if let Some(evicted) = self.llc.fill(addr, write) {
            if self.cfg.inclusive_llc {
                self.back_invalidate(evicted);
            }
        }
        self.l2.fill(addr, write);
        self.fill_l1(addr, kind, write);
        AccessResult {
            latency,
            level: HitLevel::Memory,
        }
    }

    fn fill_l1(&mut self, addr: u64, kind: AccessKind, write: bool) {
        match kind {
            AccessKind::InstFetch => {
                self.l1i.fill(addr, false);
            }
            _ => {
                self.l1d.fill(addr, write);
            }
        }
    }

    fn back_invalidate(&mut self, line_addr: u64) {
        self.l1i.flush_line(line_addr);
        self.l1d.flush_line(line_addr);
        self.l2.flush_line(line_addr);
    }

    /// `clflush`: removes the line containing `addr` from every level.
    pub fn flush(&mut self, addr: u64) {
        self.l1i.flush_line(addr);
        self.l1d.flush_line(addr);
        self.l2.flush_line(addr);
        self.llc.flush_line(addr);
    }

    /// Invalidates every level (e.g. between benchmark runs).
    pub fn flush_all(&mut self) {
        self.l1i.flush_all();
        self.l1d.flush_all();
        self.l2.flush_all();
        self.llc.flush_all();
    }

    /// Whether the line containing `addr` is present at any level
    /// (non-perturbing; for test assertions and attack ground truth).
    pub fn present_anywhere(&self, addr: u64) -> bool {
        self.l1i.contains(addr)
            || self.l1d.contains(addr)
            || self.l2.contains(addr)
            || self.llc.contains(addr)
    }

    /// Direct access to an individual level (for attack agents that reason
    /// about sets and ways).
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The last-level cache.
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            llc: *self.llc.stats(),
            memory_accesses: self.memory_accesses,
        }
    }

    /// Resets statistics at every level (cache state is untouched).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.memory_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_decreases_with_locality() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let cold = h.access(0x1000, AccessKind::DataRead);
        assert_eq!(cold.level, HitLevel::Memory);
        assert_eq!(cold.latency, 4 + 12 + 30 + 200);
        let warm = h.access(0x1000, AccessKind::DataRead);
        assert_eq!(warm.level, HitLevel::L1);
        assert_eq!(warm.latency, 4);
    }

    #[test]
    fn flush_forces_memory_access() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.access(0x2000, AccessKind::DataRead);
        h.flush(0x2000);
        assert!(!h.present_anywhere(0x2000));
        let r = h.access(0x2000, AccessKind::DataRead);
        assert_eq!(r.level, HitLevel::Memory);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        // Fill one L1D set (stride = 64 sets * 64 B = 4 KiB) beyond capacity.
        for i in 0..9u64 {
            h.access(0x10_0000 + i * 4096, AccessKind::DataRead);
        }
        // The first line was evicted from L1 but is still in L2.
        let r = h.access(0x10_0000, AccessKind::DataRead);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn inst_and_data_paths_are_split() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.access(0x3000, AccessKind::InstFetch);
        assert!(h.l1i().contains(0x3000));
        assert!(!h.l1d().contains(0x3000));
        // Same line via the data path now hits in L2, not L1.
        let r = h.access(0x3000, AccessKind::DataRead);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn inclusive_llc_back_invalidates() {
        // Tiny LLC to force LLC evictions quickly.
        let mut cfg = HierarchyConfig::default();
        cfg.llc.size_bytes = 8 * 1024; // 8 sets x 16 ways
        cfg.l2.size_bytes = 8 * 1024;
        let mut h = Hierarchy::new(cfg);
        let sets = cfg.llc.sets() as u64;
        let stride = sets * 64;
        // 17 lines in one LLC set: evicts the first.
        for i in 0..17u64 {
            h.access(0x40_0000 + i * stride, AccessKind::DataRead);
        }
        assert!(
            !h.present_anywhere(0x40_0000),
            "inclusive LLC eviction must purge upper levels"
        );
    }

    #[test]
    fn writes_mark_dirty_and_hit() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.access(0x5000, AccessKind::DataWrite);
        let r = h.access(0x5000, AccessKind::DataRead);
        assert!(r.l1_hit());
    }

    #[test]
    fn stats_roll_up() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.access(0x1000, AccessKind::DataRead);
        h.access(0x1000, AccessKind::DataRead);
        h.access(0x9000, AccessKind::InstFetch);
        let s = h.stats();
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1d.hits, 1);
        assert_eq!(s.l1i.accesses, 1);
        assert_eq!(s.memory_accesses, 2);
        h.reset_stats();
        assert_eq!(h.stats().l1d.accesses, 0);
    }
}
