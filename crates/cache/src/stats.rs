//! Cache statistics.

use csd_telemetry::{Json, ToJson};

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Lines removed by explicit flushes.
    pub flushes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` if there were no accesses.
    pub fn hit_rate(&self) -> Option<f64> {
        (self.accesses > 0).then(|| self.hits as f64 / self.accesses as f64)
    }

    /// Misses per kilo-instruction given a retired-instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.misses as f64 * 1000.0 / instructions as f64
    }

    /// Difference of two snapshots (`self - earlier`), for region-of-interest
    /// measurement.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses - earlier.accesses,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            flushes: self.flushes - earlier.flushes,
        }
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("accesses", Json::from(self.accesses)),
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
            ("evictions", Json::from(self.evictions)),
            ("flushes", Json::from(self.flushes)),
            ("hit_rate", Json::from(self.hit_rate())),
        ])
    }
}

/// Statistics for the whole hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Last-level cache.
    pub llc: CacheStats,
    /// Accesses that went all the way to memory.
    pub memory_accesses: u64,
}

impl ToJson for HierarchyStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("l1i", self.l1i.to_json()),
            ("l1d", self.l1d.to_json()),
            ("l2", self.l2.to_json()),
            ("llc", self.llc.to_json()),
            ("memory_accesses", Json::from(self.memory_accesses)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_mpki() {
        let s = CacheStats {
            accesses: 10,
            hits: 8,
            misses: 2,
            evictions: 0,
            flushes: 0,
        };
        assert_eq!(s.hit_rate(), Some(0.8));
        assert_eq!(s.mpki(1000), 2.0);
        assert_eq!(CacheStats::default().hit_rate(), None);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = CacheStats {
            accesses: 5,
            hits: 3,
            misses: 2,
            evictions: 1,
            flushes: 0,
        };
        let b = CacheStats {
            accesses: 9,
            hits: 6,
            misses: 3,
            evictions: 1,
            flushes: 2,
        };
        let d = b.delta(&a);
        assert_eq!(d.accesses, 4);
        assert_eq!(d.hits, 3);
        assert_eq!(d.misses, 1);
        assert_eq!(d.flushes, 2);
    }
}
