//! Warmed-checkpoint session cache.
//!
//! A *session* is the expensive prefix of a security experiment: core
//! construction plus the [`csd_exp::WARMUP_OPS`] warm-up operations
//! that populate the caches. The daemon parks that state as a
//! [`csd_exp::Warmed`] (an `Arc<CoreSnapshot>` plus the post-warmup
//! RNG, so forks replay the identical plaintext stream) in an LRU keyed
//! by `(victim, pipeline, seed)` — everything the warm state depends
//! on. The cache implements [`CheckpointProvider`], which is how the
//! `csd-exp` plan executor forks requests that vary only the *measured*
//! knobs (legs, watchdog period, block count) from the shared
//! checkpoint instead of re-warming — byte-identical to a cold run
//! because a snapshot captures the complete modeled machine.

use crate::lock::relock;
use csd_exp::{CheckpointProvider, SessionKey, Warmed};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// An LRU cache of warmed sessions.
pub struct SessionCache {
    cap: usize,
    // Most-recently-used first. Sessions are few and large, so a scan
    // beats a map + intrusive list.
    entries: Mutex<Vec<(SessionKey, Warmed)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SessionCache {
    /// A cache holding at most `cap` warmed sessions (at least one).
    pub fn new(cap: usize) -> SessionCache {
        SessionCache {
            cap: cap.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetches a warmed session, marking it most-recently-used.
    pub fn get(&self, key: &SessionKey) -> Option<Warmed> {
        let mut entries = relock(&self.entries);
        let i = entries.iter().position(|(k, _)| k == key)?;
        let entry = entries.remove(i);
        let warmed = entry.1.clone();
        entries.insert(0, entry);
        Some(warmed)
    }

    /// Inserts (or refreshes) a warmed session, evicting the
    /// least-recently-used entry beyond capacity.
    pub fn insert(&self, key: SessionKey, warmed: Warmed) {
        let mut entries = relock(&self.entries);
        entries.retain(|(k, _)| *k != key);
        entries.insert(0, (key, warmed));
        entries.truncate(self.cap);
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        relock(&self.entries).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plan lookups that forked a parked session.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Plan lookups that found nothing and warmed from scratch. Forced
    /// cold runs skip the lookup entirely and count here too — the
    /// counter pair answers "how often did the plan layer re-warm".
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fault injection: panic *while holding the cache lock*, the worst
    /// case for lock hygiene — the mutex is poisoned mid-critical-
    /// section and every later access must recover. Only reachable
    /// through a `{"fault": ...}` job on a daemon armed with
    /// `CSD_FAULT_SEED`.
    pub fn panic_holding_lock(&self) -> ! {
        let _guard = relock(&self.entries);
        panic!("injected fault: panic while holding the session-cache lock");
    }
}

impl CheckpointProvider for SessionCache {
    fn lookup(&self, key: &SessionKey) -> Option<Warmed> {
        let warmed = self.get(key);
        if warmed.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        warmed
    }

    fn store(&self, key: SessionKey, warmed: Warmed) {
        // The executor stores exactly once per fresh warm-up, and a
        // forced-cold plan never calls `lookup` — so counting misses at
        // the store keeps `hits + misses == warm phases` even for cold
        // runs.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.insert(key, warmed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_exp::{run_plan, security_core, security_victims, ExperimentSpec, NoCache};
    use csd_telemetry::{SplitMix64, ToJson};
    use std::sync::Arc;

    fn stealth_spec(seed: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::pair("aes-enc", "opt", seed, 2, 2000);
        spec.legs.remove(0);
        spec
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = SessionCache::new(2);
        let key = |s: &str| SessionKey {
            victim: s.to_string(),
            pipeline: "opt".to_string(),
            seed: 0,
        };
        let warmed = || {
            // A checkpoint's contents don't matter for LRU mechanics;
            // warm the cheapest victim once.
            let victims = security_victims();
            let v = victims[0].as_ref();
            let mut core = security_core(v, csd_pipeline::CoreConfig::opt());
            Warmed {
                snapshot: Arc::new(core.snapshot()),
                rng: SplitMix64::new(0),
            }
        };
        let w = warmed();
        cache.insert(key("a"), w.clone());
        cache.insert(key("b"), w.clone());
        assert!(cache.get(&key("a")).is_some()); // a is now MRU
        cache.insert(key("c"), w.clone());
        assert!(cache.get(&key("b")).is_none(), "b was LRU, evicted");
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("c")).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn warm_fork_matches_cold_run_bytes() {
        // The core session-cache invariant, module-scale: a plan forking
        // a cached checkpoint returns the byte-identical document a cold
        // run produces — including under stealth with a non-default
        // watchdog, which only touches the measured region.
        let cache = SessionCache::new(4);
        let spec = stealth_spec(11);
        let cold = run_plan(&spec, &cache, 1).expect("cold run");
        assert!(!cold.warm, "first run must be cold");
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let warm = run_plan(&spec, &cache, 1).expect("warm run");
        assert!(warm.warm, "second run must fork the session");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cold.to_json().pretty(), warm.to_json().pretty());

        // A different measured knob still forks the same session.
        let base = ExperimentSpec::single("aes-enc", "opt", 11, 3, csd_exp::LegMode::Base);
        let fork = run_plan(&base, &cache, 1).expect("fork run");
        assert!(fork.warm, "measured knobs must not change the session key");
        assert_eq!(cache.len(), 1);

        // ... and matches the same run against a cold provider.
        let reference = run_plan(&base, &NoCache, 1).expect("reference run");
        assert_eq!(
            fork.to_json().pretty(),
            reference.to_json().pretty(),
            "fork must be byte-identical to an uncached run"
        );
    }

    #[test]
    fn cache_survives_a_poisoning_panic() {
        // The poison-proofing contract at module scale: a job that
        // panics while holding the cache lock must not fail any later
        // cache operation, and warm forks after the poisoning stay
        // byte-identical to before.
        let cache = SessionCache::new(4);
        let spec = stealth_spec(3);
        let before = run_plan(&spec, &cache, 1).expect("cold run");

        let poisoned =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.panic_holding_lock()));
        assert!(poisoned.is_err(), "injected fault must panic");

        assert_eq!(cache.len(), 1, "cache state survives the poisoning");
        let after = run_plan(&spec, &cache, 1).expect("post-poison run");
        assert!(after.warm, "the parked session is still forkable");
        assert_eq!(
            before.to_json().pretty(),
            after.to_json().pretty(),
            "post-poison fork must be byte-identical"
        );
    }
}
