//! Warmed-checkpoint session cache and the ad-hoc experiment runner.
//!
//! A *session* is the expensive prefix of a security experiment: core
//! construction plus the [`csd_bench::WARMUP_OPS`] warm-up operations
//! that populate the caches. The daemon parks that state as an
//! `Arc<CoreSnapshot>` (plus the post-warmup RNG, so forks replay the
//! identical plaintext stream) in an LRU keyed by
//! `(victim, pipeline, seed)` — everything the warm state depends on.
//! Requests that vary only the *measured* knobs (stealth, watchdog
//! period, block count) fork from the shared checkpoint instead of
//! re-warming, and are byte-identical to a cold run because a snapshot
//! captures the complete modeled machine.

use crate::error::ServeError;
use crate::lock::relock;
use csd_bench::tasks::pipelines;
use csd_bench::{
    measure_blocks, security_core, security_victims, warm_up, SecMetrics, DEFAULT_WATCHDOG,
};
use csd_crypto::enable_stealth_for;
use csd_pipeline::CoreSnapshot;
use csd_telemetry::{Json, SplitMix64, ToJson};
use std::sync::{Arc, Mutex};

/// Everything the warmed state of a session depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Victim benchmark name, e.g. `aes-enc`.
    pub victim: String,
    /// Pipeline configuration name (`opt` / `noopt`).
    pub pipeline: String,
    /// Input-stream seed.
    pub seed: u64,
}

/// A warmed session: the checkpoint plus the RNG positioned just past
/// warm-up. Cloning is cheap (`Arc` + `Copy`), which is what lets many
/// concurrent requests fork the same checkpoint.
#[derive(Clone)]
pub struct Warmed {
    /// Snapshot of the complete modeled machine after warm-up.
    pub snapshot: Arc<CoreSnapshot>,
    /// Input RNG positioned at the start of the measured region.
    pub rng: SplitMix64,
}

/// An LRU cache of warmed sessions.
pub struct SessionCache {
    cap: usize,
    // Most-recently-used first. Sessions are few and large, so a scan
    // beats a map + intrusive list.
    entries: Mutex<Vec<(SessionKey, Warmed)>>,
}

impl SessionCache {
    /// A cache holding at most `cap` warmed sessions (at least one).
    pub fn new(cap: usize) -> SessionCache {
        SessionCache {
            cap: cap.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Fetches a warmed session, marking it most-recently-used.
    pub fn get(&self, key: &SessionKey) -> Option<Warmed> {
        let mut entries = relock(&self.entries);
        let i = entries.iter().position(|(k, _)| k == key)?;
        let entry = entries.remove(i);
        let warmed = entry.1.clone();
        entries.insert(0, entry);
        Some(warmed)
    }

    /// Inserts (or refreshes) a warmed session, evicting the
    /// least-recently-used entry beyond capacity.
    pub fn insert(&self, key: SessionKey, warmed: Warmed) {
        let mut entries = relock(&self.entries);
        entries.retain(|(k, _)| *k != key);
        entries.insert(0, (key, warmed));
        entries.truncate(self.cap);
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        relock(&self.entries).len()
    }

    /// Fault injection: panic *while holding the cache lock*, the worst
    /// case for lock hygiene — the mutex is poisoned mid-critical-
    /// section and every later access must recover. Only reachable
    /// through a `{"fault": ...}` job on a daemon armed with
    /// `CSD_FAULT_SEED`.
    pub fn panic_holding_lock(&self) -> ! {
        let _guard = relock(&self.entries);
        panic!("injected fault: panic while holding the session-cache lock");
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One ad-hoc experiment request (`POST /v1/experiments` with an
/// `"experiment"` body).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Victim benchmark name.
    pub victim: String,
    /// Pipeline configuration name (`opt` / `noopt`).
    pub pipeline: String,
    /// Arm stealth mode for the measured region.
    pub stealth: bool,
    /// Stealth watchdog period in cycles.
    pub watchdog: u64,
    /// Measured operations.
    pub blocks: usize,
    /// Input-stream seed.
    pub seed: u64,
    /// Skip the session cache (always re-warm).
    pub cold: bool,
}

impl ExperimentSpec {
    /// Parses the `"experiment"` object of a request body. Victim and
    /// pipeline names are validated here so admission rejects bad
    /// requests before they reach a worker.
    pub fn from_json(j: &Json) -> Result<ExperimentSpec, String> {
        let str_field = |k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("experiment.{k} must be a string"))
        };
        let u64_field = |k: &str, default: u64| -> Result<u64, String> {
            match j.get(k) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("experiment.{k} must be a non-negative integer")),
            }
        };
        let bool_field = |k: &str, default: bool| -> Result<bool, String> {
            match j.get(k) {
                None => Ok(default),
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("experiment.{k} must be a boolean")),
            }
        };
        let spec = ExperimentSpec {
            victim: str_field("victim")?,
            pipeline: match j.get("pipeline") {
                None => "opt".to_string(),
                Some(_) => str_field("pipeline")?,
            },
            stealth: bool_field("stealth", false)?,
            watchdog: u64_field("watchdog", DEFAULT_WATCHDOG)?,
            blocks: u64_field("blocks", 4)? as usize,
            seed: u64_field("seed", 0)?,
            cold: bool_field("cold", false)?,
        };
        if spec.blocks == 0 || spec.blocks > 10_000 {
            return Err("experiment.blocks must be in 1..=10000".to_string());
        }
        if !security_victims().iter().any(|v| v.name() == spec.victim) {
            return Err(format!(
                "unknown victim {:?} (try GET /v1/tasks)",
                spec.victim
            ));
        }
        if !pipelines().iter().any(|(n, _)| *n == spec.pipeline) {
            return Err(format!(
                "unknown pipeline {:?} (opt / noopt)",
                spec.pipeline
            ));
        }
        Ok(spec)
    }

    /// The session this experiment warms or forks.
    pub fn key(&self) -> SessionKey {
        SessionKey {
            victim: self.victim.clone(),
            pipeline: self.pipeline.clone(),
            seed: self.seed,
        }
    }

    /// Runs the experiment, forking a cached session when one exists
    /// (and `cold` is not forced). Returns the result document and
    /// whether a warm session was used. Warm and cold paths produce
    /// byte-identical documents; warmness is reported out-of-band (the
    /// server puts it in a response header).
    ///
    /// Victim and pipeline were validated at parse, but lookup failures
    /// are still errors, not panics — a stale spec must cost one `500`,
    /// never a worker.
    pub fn run(&self, cache: &SessionCache) -> Result<(Json, bool), ServeError> {
        let victims = security_victims();
        let victim = victims
            .iter()
            .find(|v| v.name() == self.victim)
            .ok_or_else(|| ServeError::run(format!("victim {:?} vanished", self.victim)))?
            .as_ref();
        let (_, mk) = *pipelines()
            .iter()
            .find(|(n, _)| *n == self.pipeline)
            .ok_or_else(|| ServeError::run(format!("pipeline {:?} vanished", self.pipeline)))?;

        let key = self.key();
        let mut input = vec![0u8; victim.input_len()];

        let (mut core, mut rng, warm) = match (!self.cold).then(|| cache.get(&key)).flatten() {
            Some(warmed) => {
                // Fork: fresh core of the same shape, complete machine
                // state restored from the shared checkpoint.
                let mut core = security_core(victim, mk());
                core.restore(&warmed.snapshot);
                (core, warmed.rng, true)
            }
            None => {
                // Cold: warm up from scratch, then park the session for
                // future requests before running the measured region.
                let mut core = security_core(victim, mk());
                let mut rng = SplitMix64::new(self.seed);
                warm_up(&mut core, victim, &mut rng, &mut input);
                cache.insert(
                    key,
                    Warmed {
                        snapshot: Arc::new(core.snapshot()),
                        rng,
                    },
                );
                (core, rng, false)
            }
        };

        if self.stealth {
            enable_stealth_for(victim, &mut core, self.watchdog);
        }
        let metrics = measure_blocks(&mut core, victim, &mut rng, &mut input, self.blocks);
        Ok((self.document(&metrics), warm))
    }

    /// The response document (identical for warm and cold runs).
    fn document(&self, metrics: &SecMetrics) -> Json {
        Json::obj([
            ("victim", Json::from(self.victim.as_str())),
            ("pipeline", Json::from(self.pipeline.as_str())),
            ("stealth", Json::Bool(self.stealth)),
            ("watchdog", Json::from(self.watchdog)),
            ("blocks", Json::from(self.blocks as u64)),
            ("seed", Json::from(self.seed)),
            ("metrics", metrics.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = SessionCache::new(2);
        let key = |s: &str| SessionKey {
            victim: s.to_string(),
            pipeline: "opt".to_string(),
            seed: 0,
        };
        let warmed = || {
            // A checkpoint's contents don't matter for LRU mechanics;
            // warm the cheapest victim once.
            let victims = security_victims();
            let v = victims[0].as_ref();
            let mut core = security_core(v, csd_pipeline::CoreConfig::opt());
            Warmed {
                snapshot: Arc::new(core.snapshot()),
                rng: SplitMix64::new(0),
            }
        };
        let w = warmed();
        cache.insert(key("a"), w.clone());
        cache.insert(key("b"), w.clone());
        assert!(cache.get(&key("a")).is_some()); // a is now MRU
        cache.insert(key("c"), w.clone());
        assert!(cache.get(&key("b")).is_none(), "b was LRU, evicted");
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("c")).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn spec_parsing_validates_and_defaults() {
        let body = Json::obj([
            ("victim", Json::from("aes-enc")),
            ("seed", Json::from(7u64)),
        ]);
        let spec = ExperimentSpec::from_json(&body).unwrap();
        assert_eq!(spec.pipeline, "opt");
        assert_eq!(spec.watchdog, DEFAULT_WATCHDOG);
        assert_eq!(spec.blocks, 4);
        assert!(!spec.stealth);
        assert!(!spec.cold);

        let bad = Json::obj([("victim", Json::from("no-such"))]);
        assert!(ExperimentSpec::from_json(&bad)
            .unwrap_err()
            .contains("victim"));
        let bad = Json::obj([
            ("victim", Json::from("aes-enc")),
            ("pipeline", Json::from("turbo")),
        ]);
        assert!(ExperimentSpec::from_json(&bad)
            .unwrap_err()
            .contains("pipeline"));
        let bad = Json::obj([
            ("victim", Json::from("aes-enc")),
            ("blocks", Json::from(0u64)),
        ]);
        assert!(ExperimentSpec::from_json(&bad)
            .unwrap_err()
            .contains("blocks"));
    }

    #[test]
    fn warm_fork_matches_cold_run_bytes() {
        // The core session-cache invariant, module-scale: a fork from a
        // cached checkpoint returns the byte-identical document a cold
        // run produces — including under stealth with a non-default
        // watchdog, which only touches the measured region.
        let cache = SessionCache::new(4);
        let spec = ExperimentSpec {
            victim: "aes-enc".to_string(),
            pipeline: "opt".to_string(),
            stealth: true,
            watchdog: 2000,
            blocks: 2,
            seed: 11,
            cold: false,
        };
        let (cold, warm_hit) = spec.run(&cache).expect("cold run");
        assert!(!warm_hit, "first run must be cold");
        assert_eq!(cache.len(), 1);
        let (warm, warm_hit) = spec.run(&cache).expect("warm run");
        assert!(warm_hit, "second run must fork the session");
        assert_eq!(cold.pretty(), warm.pretty());

        // A different measured knob still forks the same session.
        let base = ExperimentSpec {
            stealth: false,
            ..spec.clone()
        };
        let (_, warm_hit) = base.run(&cache).expect("fork run");
        assert!(warm_hit, "stealth knob must not change the session key");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_survives_a_poisoning_panic() {
        // The poison-proofing contract at module scale: a job that
        // panics while holding the cache lock must not fail any later
        // cache operation, and warm forks after the poisoning stay
        // byte-identical to before.
        let cache = SessionCache::new(4);
        let spec = ExperimentSpec {
            victim: "aes-enc".to_string(),
            pipeline: "opt".to_string(),
            stealth: false,
            watchdog: DEFAULT_WATCHDOG,
            blocks: 2,
            seed: 3,
            cold: false,
        };
        let (before, _) = spec.run(&cache).expect("cold run");

        let poisoned =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.panic_holding_lock()));
        assert!(poisoned.is_err(), "injected fault must panic");

        assert_eq!(cache.len(), 1, "cache state survives the poisoning");
        let (after, warm_hit) = spec.run(&cache).expect("post-poison run");
        assert!(warm_hit, "the parked session is still forkable");
        assert_eq!(
            before.pretty(),
            after.pretty(),
            "post-poison fork must be byte-identical"
        );
    }
}
