//! A bounded MPMC job queue with fail-fast admission.
//!
//! [`Bounded::try_push`] never blocks: when the queue is at capacity the
//! caller gets the item back and answers `503` with `Retry-After` —
//! backpressure is pushed to the client instead of accumulating
//! unbounded work in the daemon. [`Bounded::pop`] blocks workers until
//! an item arrives; after [`Bounded::close`] it drains what was already
//! admitted, then returns `None` so workers exit.

use crate::lock::{relock, rewait};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] returned the item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed (shutdown in progress).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue.
pub struct Bounded<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `cap` items (at least one).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Admits `item` if there is room; fails fast otherwise.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = relock(&self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available, or until the queue is closed
    /// *and* drained (then `None`). Items admitted before `close` are
    /// always handed out.
    pub fn pop(&self) -> Option<T> {
        let mut inner = relock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = rewait(&self.available, inner);
        }
    }

    /// Stops admission and wakes every blocked consumer.
    pub fn close(&self) {
        relock(&self.inner).closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (snapshot; for metrics only).
    pub fn len(&self) -> usize {
        relock(&self.inner).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_after_close() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        // Admitted items drain even after close.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(Bounded::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..10 {
            // Producers may race a full queue; retry like the server's
            // client would.
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        // Let consumers drain before closing so all 10 are counted.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 10);
    }
}
