//! `loadgen` — load generator, chaos driver, and scripting client for
//! `csd-serve`.
//!
//! Load mode (default):
//!
//! ```text
//! cargo run --release -p csd-serve --bin loadgen -- \
//!     --addr HOST:PORT [--connections N] [--requests N] \
//!     [--mix warm=8,cold=1,task=1] [--seed S]
//! ```
//!
//! Opens `--connections` keep-alive connections, issues `--requests`
//! total requests drawn from the weighted mix, retries `503` rejections
//! with backoff, and reports latency percentiles from the same
//! log2-bucket [`Histogram`] the server uses for its own metrics.
//! Transport errors reconnect with backoff and are reported in the
//! summary; the process exits non-zero only if requests ultimately
//! failed. Exits non-zero if any request ultimately failed.
//!
//! Chaos mode (`--chaos`): drives a seeded schedule of hostile clients
//! and injected faults against a daemon started with `CSD_FAULT_SEED`:
//! panicking jobs (plain and lock-poisoning), worker stalls, slowloris
//! clients, aborted half-written requests, malformed frames, and
//! queue-saturation bursts. Every interaction must end in a well-formed
//! HTTP response or a clean server-initiated close; the run fails if
//! the daemon ever answers garbage, hangs, or dies. Reproduce any run
//! with its `--seed`.
//!
//! Helper modes for CI scripting: `--ping` (healthz), `--one LABEL`
//! (fetch one task document, `--out PATH`), `--spec JSON|@FILE` (post
//! one typed experiment spec, validated client-side), `--verify-warm`
//! (cold run, then warm fork; assert byte-identical bodies),
//! `--shutdown`.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use csd_exp::{ExperimentSpec, LegMode};
use csd_serve::{Client, ClientResponse, RetryClient};
use csd_telemetry::ToJson;
use csd_telemetry::{derive_seed, write_atomic, Histogram, Json, SplitMix64};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Warm,
    Cold,
    Task,
    Devec,
}

#[derive(Debug, Clone)]
struct Mix {
    weights: Vec<(Kind, u64)>,
}

impl Mix {
    fn parse(s: &str) -> Result<Mix, String> {
        let mut weights = Vec::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (name, w) = part
                .split_once('=')
                .ok_or_else(|| format!("mix entry {part:?} is not NAME=WEIGHT"))?;
            let kind = match name {
                "warm" => Kind::Warm,
                "cold" => Kind::Cold,
                "task" => Kind::Task,
                "devec" => Kind::Devec,
                _ => return Err(format!("unknown mix kind {name:?}")),
            };
            let w: u64 = w
                .parse()
                .map_err(|_| format!("mix weight in {part:?} is not an integer"))?;
            weights.push((kind, w));
        }
        if weights.iter().map(|(_, w)| w).sum::<u64>() == 0 {
            return Err("mix has zero total weight".to_string());
        }
        Ok(Mix { weights })
    }

    fn pick(&self, rng: &mut SplitMix64) -> Kind {
        let total: u64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut roll = rng.range_u64(0, total - 1);
        for (kind, w) in &self.weights {
            if roll < *w {
                return *kind;
            }
            roll -= w;
        }
        self.weights[0].0
    }
}

#[derive(Default)]
struct Outcome {
    latency: Histogram,
    ok: u64,
    errors: u64,
    retries: u64,
    reconnects: u64,
    warm_hits: u64,
}

impl Outcome {
    /// The per-connection summary row for the JSON report.
    fn to_json(&self, id: usize) -> Json {
        Json::obj([
            ("id", Json::from(id as u64)),
            ("ok", Json::from(self.ok)),
            ("errors", Json::from(self.errors)),
            ("retries_503", Json::from(self.retries)),
            ("reconnects", Json::from(self.reconnects)),
            ("warm_hits", Json::from(self.warm_hits)),
        ])
    }
}

fn main() {
    let mut addr = "127.0.0.1:8321".to_string();
    let mut connections = 4usize;
    let mut requests = 64usize;
    let mut mix_spec = "warm=8,cold=1,task=1".to_string();
    let mut seed: u64 = 0x10AD_2018;
    let mut profile = "quick".to_string();
    let mut out_path: Option<String> = None;
    let mut summary_out: Option<String> = None;
    let mut slow_ms: u64 = 1_500;
    let mut mode_ping = false;
    let mut mode_shutdown = false;
    let mut mode_verify_warm = false;
    let mut mode_chaos = false;
    let mut mode_one: Option<String> = None;
    let mut mode_spec: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| die("--addr needs HOST:PORT")),
            "--connections" => {
                connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--connections needs a positive integer"));
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--requests needs a positive integer"));
            }
            "--mix" => mix_spec = args.next().unwrap_or_else(|| die("--mix needs a spec")),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--profile" => profile = args.next().unwrap_or_else(|| die("--profile needs a name")),
            "--out" => out_path = Some(args.next().unwrap_or_else(|| die("--out needs a path"))),
            "--summary-out" => {
                summary_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--summary-out needs a path")),
                );
            }
            "--slow-ms" => {
                slow_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--slow-ms needs a positive integer"));
            }
            "--ping" => mode_ping = true,
            "--shutdown" => mode_shutdown = true,
            "--verify-warm" => mode_verify_warm = true,
            "--chaos" => mode_chaos = true,
            "--one" => mode_one = Some(args.next().unwrap_or_else(|| die("--one needs a label"))),
            "--spec" => {
                mode_spec = Some(
                    args.next()
                        .unwrap_or_else(|| die("--spec needs JSON or @FILE")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: loadgen --addr HOST:PORT [--connections N] [--requests N]\n\
                     \x20              [--mix warm=8,cold=1,task=1] [--seed S]\n\
                     \x20              [--summary-out PATH]  (JSON summary incl. per-connection\n\
                     \x20               reconnect/retry counts)\n\
                     \x20      or: --chaos [--requests N] [--seed S] [--slow-ms MS]\n\
                     \x20          (daemon must run with CSD_FAULT_SEED set and a short\n\
                     \x20           --conn-deadline-ms; see scripts/chaos_smoke.sh)\n\
                     \x20      or: --ping | --shutdown | --verify-warm |\n\
                     \x20          --one LABEL [--profile quick|full] [--out PATH] |\n\
                     \x20          --spec JSON|@FILE [--out PATH]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    if mode_ping {
        let body = simple(&addr, "GET", "/healthz", "");
        println!("{}", body.trim_end());
        return;
    }
    if mode_shutdown {
        let body = simple(&addr, "POST", "/v1/shutdown", "{}");
        println!("{}", body.trim_end());
        return;
    }
    if let Some(label) = mode_one {
        let req = format!("{{\"task\": {label:?}, \"profile\": {profile:?}, \"seed\": {seed}}}");
        let resp = request_with_retry(&addr, "/v1/experiments", &req, 100)
            .unwrap_or_else(|e| die(&format!("task request: {e}")));
        if resp.status != 200 {
            die(&format!(
                "task request failed: {} {}",
                resp.status,
                resp.text()
            ));
        }
        match out_path {
            Some(path) => {
                write_atomic(Path::new(&path), &resp.body).unwrap_or_else(|e| die(&e.to_string()))
            }
            None => std::io::stdout()
                .write_all(&resp.body)
                .unwrap_or_else(|e| die(&format!("writing stdout: {e}"))),
        }
        return;
    }
    if let Some(raw) = mode_spec {
        // Validate client-side through the same typed spec the server
        // parses, so a typo dies here with a real message instead of a
        // 400 — and the posted body is the canonical serialization.
        let text = match raw.strip_prefix('@') {
            Some(path) => std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("reading {path}: {e}"))),
            None => raw,
        };
        let doc =
            Json::parse(&text).unwrap_or_else(|e| die(&format!("--spec is not valid JSON: {e}")));
        // Accept a bare spec or an already-wrapped {"experiment": ...}.
        let spec = ExperimentSpec::from_json(doc.get("experiment").unwrap_or(&doc))
            .unwrap_or_else(|e| die(&format!("--spec: {e}")));
        let resp = request_with_retry(&addr, "/v1/experiments", &experiment_body(&spec), 100)
            .unwrap_or_else(|e| die(&format!("spec request: {e}")));
        if resp.status != 200 {
            die(&format!(
                "spec request failed: {} {}",
                resp.status,
                resp.text()
            ));
        }
        eprintln!(
            "loadgen: spec ok (warm={})",
            resp.header("x-csd-warm").unwrap_or("?")
        );
        match out_path {
            Some(path) => {
                write_atomic(Path::new(&path), &resp.body).unwrap_or_else(|e| die(&e.to_string()))
            }
            None => std::io::stdout()
                .write_all(&resp.body)
                .unwrap_or_else(|e| die(&format!("writing stdout: {e}"))),
        }
        return;
    }
    if mode_verify_warm {
        verify_warm(&addr, seed);
        return;
    }
    if mode_chaos {
        run_chaos(&addr, requests, seed, slow_ms);
        return;
    }

    let mix = Mix::parse(&mix_spec).unwrap_or_else(|e| die(&e));
    eprintln!(
        "loadgen: {addr} connections={connections} requests={requests} mix={mix_spec} seed={seed:#x}"
    );
    let connections = connections.max(1);
    let per = requests / connections;
    let extra = requests % connections;
    let t0 = Instant::now();
    let outcomes: Vec<Outcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let n = per + usize::from(c < extra);
                let addr = addr.clone();
                let mix = mix.clone();
                let conn_seed = derive_seed(seed, &format!("conn/{c}"));
                (
                    n,
                    s.spawn(move || run_connection(&addr, n, &mix, conn_seed, seed)),
                )
            })
            .collect();
        handles
            .into_iter()
            .map(|(n, h)| {
                h.join().unwrap_or_else(|_| {
                    // A panicking connection thread fails its share of
                    // the budget; the run itself keeps going.
                    eprintln!("loadgen: connection thread panicked; counting {n} failures");
                    Outcome {
                        errors: n as u64,
                        ..Outcome::default()
                    }
                })
            })
            .collect()
    });
    let wall = t0.elapsed();

    let mut latency = Histogram::new();
    let (mut ok, mut errors, mut retries, mut reconnects, mut warm_hits) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for o in &outcomes {
        latency.merge(&o.latency);
        ok += o.ok;
        errors += o.errors;
        retries += o.retries;
        reconnects += o.reconnects;
        warm_hits += o.warm_hits;
    }
    println!(
        "loadgen: ok={ok} errors={errors} retries_503={retries} reconnects={reconnects} \
         warm_hits={warm_hits} wall_s={:.2} rps={:.1}",
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "loadgen: latency_us p50={} p90={} p99={} max={}",
        pct(&latency, 50.0),
        pct(&latency, 90.0),
        pct(&latency, 99.0),
        latency.max(),
    );
    let mut summary_write_failed = false;
    if let Some(path) = summary_out {
        // Everything the stderr/stdout lines say — plus the per-connection
        // recovery counters — as one parseable document, so chaos and
        // cluster smokes can assert on reconnect/retry behavior instead
        // of scraping log lines.
        let summary = Json::obj([
            ("addr", Json::from(addr.as_str())),
            ("connections", Json::from(connections as u64)),
            ("requests", Json::from(requests as u64)),
            ("seed", Json::from(seed)),
            ("mix", Json::from(mix_spec.as_str())),
            ("ok", Json::from(ok)),
            ("errors", Json::from(errors)),
            ("retries_503", Json::from(retries)),
            ("reconnects", Json::from(reconnects)),
            ("warm_hits", Json::from(warm_hits)),
            ("latency_us", latency.to_json()),
            (
                "per_connection",
                Json::Arr(
                    outcomes
                        .iter()
                        .enumerate()
                        .map(|(i, o)| o.to_json(i))
                        .collect(),
                ),
            ),
        ]);
        // A summary the CI can't read must not look like a pass: the
        // write failure is reported, accounting finishes, and the exit
        // code goes non-zero — instead of dying mid-run or logging the
        // error and exiting 0.
        match write_atomic(Path::new(&path), summary.pretty().as_bytes()) {
            Ok(()) => eprintln!("loadgen: wrote summary to {path}"),
            Err(e) => {
                eprintln!("loadgen: {e}");
                summary_write_failed = true;
            }
        }
    }
    let code = load_exit_code(errors, summary_write_failed);
    if code != 0 {
        std::process::exit(code);
    }
}

/// The exit code for a load run: request failures and a failed summary
/// write both fail the run.
fn load_exit_code(errors: u64, summary_write_failed: bool) -> i32 {
    i32::from(errors > 0 || summary_write_failed)
}

/// Renders one percentile, or `-` for an empty histogram (a run where
/// every request failed before being timed).
fn pct(h: &Histogram, p: f64) -> String {
    h.percentile(p)
        .map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// One connection's request loop over the shared [`RetryClient`]:
/// transport errors reconnect with seeded backoff, `503` responses are
/// retried honoring `Retry-After`, and both recoveries are counted —
/// never treated as failures unless the budget runs out. Warm requests
/// key their sessions off the run-wide `global_seed` so all connections
/// share (and so hit) the same few cached checkpoints; cold requests
/// perturb the connection-local seed to force fresh warm-ups.
fn run_connection(addr: &str, n: usize, mix: &Mix, conn_seed: u64, global_seed: u64) -> Outcome {
    let mut rng = SplitMix64::new(conn_seed);
    let mut out = Outcome::default();
    let mut client = RetryClient::new(addr, derive_seed(conn_seed, "backoff"));
    for i in 0..n {
        let body = request_body(mix.pick(&mut rng), &mut rng, conn_seed, global_seed, i);
        let t0 = Instant::now();
        let resolved = client.post_json("/v1/experiments", &body, 50).ok();
        out.latency
            .record(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        match resolved {
            Some(resp) if resp.status == 200 => {
                out.ok += 1;
                if resp.header("x-csd-warm") == Some("1") {
                    out.warm_hits += 1;
                }
            }
            _ => out.errors += 1,
        }
    }
    let stats = client.stats();
    out.retries = stats.retries_503;
    out.reconnects = stats.reconnects;
    out
}

/// Wraps a typed spec into the `POST /v1/experiments` body shape.
fn experiment_body(spec: &ExperimentSpec) -> String {
    Json::obj([("experiment", spec.to_json())]).dump()
}

/// The request body for one drawn kind. Warm requests rotate a small set
/// of sessions (so the cache hits); cold requests force fresh warm-ups.
fn request_body(
    kind: Kind,
    rng: &mut SplitMix64,
    conn_seed: u64,
    global_seed: u64,
    i: usize,
) -> String {
    match kind {
        Kind::Warm => {
            let victims = ["aes-enc", "blowfish-enc", "rsa-enc"];
            let victim = victims[rng.range_u64(0, victims.len() as u64 - 1) as usize];
            let stealth = rng.range_u64(0, 1) == 1;
            let watchdog = [1000u64, 2000][rng.range_u64(0, 1) as usize];
            let mode = if stealth {
                LegMode::Stealth { watchdog }
            } else {
                LegMode::Base
            };
            experiment_body(&ExperimentSpec::single(victim, "opt", global_seed, 2, mode))
        }
        Kind::Cold => {
            let fresh = conn_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut spec = ExperimentSpec::single("aes-enc", "opt", fresh, 2, LegMode::Base);
            spec.cold = true;
            experiment_body(&spec)
        }
        Kind::Task => "{\"task\": \"table1\", \"profile\": \"quick\"}".to_string(),
        Kind::Devec => {
            "{\"devec\": {\"workload\": \"gcc\", \"policy\": \"csd-devec\", \"scale\": 0.02}}"
                .to_string()
        }
    }
}

// ---------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosOp {
    /// `{"fault":{"kind":"panic"}}` — worker must answer 500/class run.
    Panic,
    /// Panic while holding the session-cache lock (poison + recover).
    PanicPoison,
    /// `{"fault":{"kind":"sleep"}}` — worker stalls, then 200.
    Sleep,
    /// Dribble a request head one byte at a time; the server must cut
    /// us off (408 or close) instead of pinning the thread forever.
    SlowClient,
    /// Write half a request and abort the connection.
    PartialWrite,
    /// Send bytes that are not HTTP; the server must answer 400 or
    /// close, never crash.
    MalformedFrame,
    /// Burst of concurrent stall jobs; the queue must overflow into
    /// well-formed 503s, never into hangs.
    Saturate,
}

const CHAOS_OPS: [(ChaosOp, u64); 7] = [
    (ChaosOp::Panic, 3),
    (ChaosOp::PanicPoison, 2),
    (ChaosOp::Sleep, 2),
    (ChaosOp::SlowClient, 1),
    (ChaosOp::PartialWrite, 2),
    (ChaosOp::MalformedFrame, 3),
    (ChaosOp::Saturate, 1),
];

fn pick_chaos(rng: &mut SplitMix64) -> ChaosOp {
    let total: u64 = CHAOS_OPS.iter().map(|(_, w)| w).sum();
    let mut roll = rng.range_u64(0, total - 1);
    for (op, w) in CHAOS_OPS {
        if roll < w {
            return op;
        }
        roll -= w;
    }
    ChaosOp::Panic
}

/// Drives `requests` seeded hostile interactions and verifies the daemon
/// absorbs all of them. Exits non-zero on the first accounting failure:
/// an interaction that got a garbled response, hung past its budget, or
/// a daemon that stopped answering `/healthz`.
fn run_chaos(addr: &str, requests: usize, seed: u64, slow_ms: u64) {
    eprintln!("loadgen: chaos {addr} requests={requests} seed={seed:#x} slow_ms={slow_ms}");
    // Fail fast if the daemon is not armed: a 403 here means
    // CSD_FAULT_SEED is unset and every panic op would "fail".
    let probe = request_with_retry(
        addr,
        "/v1/experiments",
        "{\"fault\":{\"kind\":\"sleep\",\"ms\":1}}",
        50,
    )
    .unwrap_or_else(|e| die(&format!("chaos probe: {e}")));
    if probe.status == 403 {
        die("daemon refuses fault jobs; start it with CSD_FAULT_SEED set");
    }

    let mut rng = SplitMix64::new(derive_seed(seed, "chaos"));
    let mut counts = [0u64; 7];
    let mut rejected_503 = 0u64;
    let mut failures: Vec<String> = Vec::new();
    for i in 0..requests {
        let op = pick_chaos(&mut rng);
        counts[op_index(op)] += 1;
        let verdict = match op {
            ChaosOp::Panic => chaos_fault_panic(addr, false),
            ChaosOp::PanicPoison => chaos_fault_panic(addr, true),
            ChaosOp::Sleep => chaos_fault_sleep(addr, &mut rng),
            ChaosOp::SlowClient => chaos_slow_client(addr, slow_ms),
            ChaosOp::PartialWrite => chaos_partial_write(addr),
            ChaosOp::MalformedFrame => chaos_malformed(addr, &mut rng),
            ChaosOp::Saturate => chaos_saturate(addr).map(|n| rejected_503 += n),
        };
        if let Err(msg) = verdict {
            failures.push(format!("op {i} ({op:?}): {msg}"));
        }
    }

    // The daemon must still be fully alive and coherent.
    let health = request_with_retry(addr, "/healthz", "", 50);
    let alive = matches!(&health, Ok(r) if r.status == 200);
    if !alive {
        failures.push("daemon stopped answering /healthz after chaos".to_string());
    }
    let metrics = Client::connect(addr)
        .and_then(|mut c| c.get("/metrics"))
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| Json::parse(&r.text()).ok());
    match &metrics {
        Some(m) => {
            let g = |p: &str, k: &str| {
                m.get(p)
                    .and_then(|o| o.get(k))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            let top = |k: &str| m.get(k).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "loadgen: chaos server-side injected_faults={} worker_panics={} \
                 poison_recoveries={} deadline_closes={} errors(admission={} parse={} run={} io={})",
                top("injected_faults"),
                top("worker_panics"),
                top("lock_poison_recoveries"),
                top("deadline_closes"),
                g("errors", "admission"),
                g("errors", "parse"),
                g("errors", "run"),
                g("errors", "io"),
            );
            let panics_sent =
                counts[op_index(ChaosOp::Panic)] + counts[op_index(ChaosOp::PanicPoison)];
            if top("worker_panics") < panics_sent {
                failures.push(format!(
                    "metrics undercount panics: worker_panics={} < injected {panics_sent}",
                    top("worker_panics")
                ));
            }
        }
        None => failures.push("daemon stopped serving parseable /metrics".to_string()),
    }

    println!(
        "loadgen: chaos panic={} poison={} sleep={} slow={} partial={} malformed={} \
         saturate={} rejected_503={rejected_503} failures={}",
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4],
        counts[5],
        counts[6],
        failures.len(),
    );
    for f in failures.iter().take(10) {
        eprintln!("loadgen: chaos FAILURE: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    println!("loadgen: chaos ok (daemon absorbed every fault)");
}

fn op_index(op: ChaosOp) -> usize {
    CHAOS_OPS
        .iter()
        .position(|(o, _)| *o == op)
        .unwrap_or_default()
}

/// A panic job must come back as a well-formed `500` with `class: run`
/// and a message naming the panic — not as a hang or a dropped
/// connection.
fn chaos_fault_panic(addr: &str, poison: bool) -> Result<(), String> {
    let body = format!("{{\"fault\":{{\"kind\":\"panic\",\"poison\":{poison}}}}}");
    let resp = request_with_retry(addr, "/v1/experiments", &body, 50)
        .map_err(|e| format!("transport: {e}"))?;
    if resp.status != 500 {
        return Err(format!(
            "expected 500, got {}: {}",
            resp.status,
            resp.text()
        ));
    }
    let doc = Json::parse(&resp.text()).map_err(|e| format!("unparseable 500 body: {e}"))?;
    if doc.get("class").and_then(Json::as_str) != Some("run") {
        return Err(format!("500 body lacks class=run: {}", resp.text()));
    }
    Ok(())
}

/// A stall job must come back `200` after its nap.
fn chaos_fault_sleep(addr: &str, rng: &mut SplitMix64) -> Result<(), String> {
    let ms = rng.range_u64(5, 60);
    let body = format!("{{\"fault\":{{\"kind\":\"sleep\",\"ms\":{ms}}}}}");
    let resp = request_with_retry(addr, "/v1/experiments", &body, 50)
        .map_err(|e| format!("transport: {e}"))?;
    if resp.status != 200 {
        return Err(format!("expected 200, got {}", resp.status));
    }
    Ok(())
}

/// Dribbles a request head one byte at a time, slower than the server's
/// connection deadline. Success is the server cutting us off: a `408`
/// response, a clean close, or a reset once it gave up on us.
fn chaos_slow_client(addr: &str, slow_ms: u64) -> Result<(), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_millis(
        slow_ms.saturating_mul(4).max(2_000),
    )))
    .map_err(|e| format!("timeout: {e}"))?;
    let head = b"POST /v1/experiments HTTP/1.1\r\nHost: chaos\r\n";
    let step = Duration::from_millis((slow_ms / head.len() as u64).max(20));
    for b in head {
        if s.write_all(&[*b]).is_err() {
            return Ok(()); // the server already cut us off — success
        }
        std::thread::sleep(step);
    }
    // Never finish the head; wait for the server to give up on us.
    let mut buf = [0u8; 1024];
    match s.read(&mut buf) {
        Ok(0) => Ok(()),
        Ok(n) => {
            let text = String::from_utf8_lossy(&buf[..n]);
            if text.starts_with("HTTP/1.1 408") {
                Ok(())
            } else {
                Err(format!("expected 408 or close, got {text:?}"))
            }
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::ConnectionReset
                || e.kind() == std::io::ErrorKind::BrokenPipe =>
        {
            Ok(())
        }
        Err(_) => Err("server never cut off a slowloris client".to_string()),
    }
}

/// Writes half a request and aborts. There is nothing to read back; the
/// point is that the daemon treats the dangling connection as EOF.
fn chaos_partial_write(addr: &str) -> Result<(), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = s.write_all(b"POST /v1/experiments HTTP/1.1\r\nContent-Length: 999\r\n\r\n{\"task\"");
    Ok(()) // dropping the stream aborts the request mid-body
}

/// Sends seeded garbage; the only acceptable outcomes are a well-formed
/// HTTP error response or a close — never a hang.
fn chaos_malformed(addr: &str, rng: &mut SplitMix64) -> Result<(), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut garbage: Vec<u8> = (0..rng.range_u64(8, 64))
        .map(|_| rng.range_u64(0, 255) as u8)
        .collect();
    garbage.extend_from_slice(b"\r\n\r\n"); // force the parser to a verdict
    if s.write_all(&garbage).is_err() {
        return Ok(());
    }
    let mut buf = [0u8; 4096];
    match s.read(&mut buf) {
        Ok(0) => Ok(()),
        Ok(n) => {
            let text = String::from_utf8_lossy(&buf[..n]);
            if text.starts_with("HTTP/1.1 ") {
                Ok(())
            } else {
                Err(format!("garbled reply to garbage: {text:?}"))
            }
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::ConnectionReset
                || e.kind() == std::io::ErrorKind::BrokenPipe =>
        {
            Ok(())
        }
        Err(_) => Err("server hung on a malformed frame".to_string()),
    }
}

/// Fires a burst of concurrent stall jobs at the bounded queue. Every
/// response must be a well-formed `200` or `503`; returns how many were
/// rejected.
fn chaos_saturate(addr: &str) -> Result<u64, String> {
    const BURST: usize = 8;
    let results: Vec<Result<u16, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let resp = c
                        .post_json(
                            "/v1/experiments",
                            "{\"fault\":{\"kind\":\"sleep\",\"ms\":150}}",
                        )
                        .map_err(|e| format!("transport: {e}"))?;
                    Ok(resp.status)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("burst thread panicked".to_string()))
            })
            .collect()
    });
    let mut rejected = 0u64;
    for r in results {
        match r? {
            200 => {}
            503 => rejected += 1,
            other => return Err(format!("burst got unexpected status {other}")),
        }
    }
    Ok(rejected)
}

/// Posts the same experiment cold then warm and asserts the bodies are
/// byte-identical — the session-cache contract, checked over the wire.
fn verify_warm(addr: &str, seed: u64) {
    let mut spec = ExperimentSpec::single(
        "aes-enc",
        "opt",
        seed,
        2,
        LegMode::Stealth { watchdog: 2000 },
    );
    spec.cold = true;
    let cold_body = experiment_body(&spec);
    spec.cold = false;
    let warm_body = experiment_body(&spec);
    let cold = request_with_retry(addr, "/v1/experiments", &cold_body, 100)
        .unwrap_or_else(|e| die(&format!("cold run: {e}")));
    if cold.status != 200 {
        die(&format!("cold run failed: {} {}", cold.status, cold.text()));
    }
    let warm = request_with_retry(addr, "/v1/experiments", &warm_body, 100)
        .unwrap_or_else(|e| die(&format!("warm run: {e}")));
    if warm.status != 200 {
        die(&format!("warm run failed: {} {}", warm.status, warm.text()));
    }
    if warm.header("x-csd-warm") != Some("1") {
        die("second run was not served from the session cache");
    }
    if cold.body != warm.body {
        die("warm fork bytes differ from cold run bytes");
    }
    println!(
        "loadgen: verify-warm ok ({} identical bytes, warm fork hit the cache)",
        warm.body.len()
    );
}

/// One-shot request through the shared retry client (connect retries,
/// `503` backoff honoring `Retry-After`, reconnect on transport errors).
fn request_with_retry(
    addr: &str,
    target: &str,
    body: &str,
    max_attempts: u32,
) -> std::io::Result<ClientResponse> {
    let mut client = RetryClient::new(addr, 0x10AD_5EED);
    if body.is_empty() && !target.starts_with("/v1/experiments") {
        client.get(target, max_attempts)
    } else {
        client.post_json(target, body, max_attempts)
    }
}

fn simple(addr: &str, method: &str, target: &str, body: &str) -> String {
    let mut client = Client::connect(addr).unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
    let resp = client
        .request(method, target, body.as_bytes())
        .unwrap_or_else(|e| die(&format!("{method} {target}: {e}")));
    if resp.status != 200 {
        die(&format!(
            "{method} {target}: {} {}",
            resp.status,
            resp.text()
        ));
    }
    resp.text()
}

fn die(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::load_exit_code;

    #[test]
    fn summary_write_failure_fails_the_run() {
        assert_eq!(load_exit_code(0, false), 0);
        assert_eq!(load_exit_code(3, false), 1);
        assert_eq!(
            load_exit_code(0, true),
            1,
            "unreadable summary must not pass"
        );
        assert_eq!(load_exit_code(3, true), 1);
    }
}
