//! `loadgen` — load generator and scripting client for `csd-serve`.
//!
//! Load mode (default):
//!
//! ```text
//! cargo run --release -p csd-serve --bin loadgen -- \
//!     --addr HOST:PORT [--connections N] [--requests N] \
//!     [--mix warm=8,cold=1,task=1] [--seed S]
//! ```
//!
//! Opens `--connections` keep-alive connections, issues `--requests`
//! total requests drawn from the weighted mix, retries `503` rejections
//! with backoff, and reports latency percentiles from the same
//! log2-bucket [`Histogram`] the server uses for its own metrics.
//! Exits non-zero if any request ultimately failed.
//!
//! Helper modes for CI scripting: `--ping` (healthz), `--one LABEL`
//! (fetch one task document, `--out PATH`), `--verify-warm` (cold run,
//! then warm fork; assert byte-identical bodies), `--shutdown`.

use csd_serve::{Client, ClientResponse};
use csd_telemetry::{derive_seed, Histogram, SplitMix64};
use std::io::Write as _;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Warm,
    Cold,
    Task,
    Devec,
}

#[derive(Debug, Clone)]
struct Mix {
    weights: Vec<(Kind, u64)>,
}

impl Mix {
    fn parse(s: &str) -> Result<Mix, String> {
        let mut weights = Vec::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (name, w) = part
                .split_once('=')
                .ok_or_else(|| format!("mix entry {part:?} is not NAME=WEIGHT"))?;
            let kind = match name {
                "warm" => Kind::Warm,
                "cold" => Kind::Cold,
                "task" => Kind::Task,
                "devec" => Kind::Devec,
                _ => return Err(format!("unknown mix kind {name:?}")),
            };
            let w: u64 = w
                .parse()
                .map_err(|_| format!("mix weight in {part:?} is not an integer"))?;
            weights.push((kind, w));
        }
        if weights.iter().map(|(_, w)| w).sum::<u64>() == 0 {
            return Err("mix has zero total weight".to_string());
        }
        Ok(Mix { weights })
    }

    fn pick(&self, rng: &mut SplitMix64) -> Kind {
        let total: u64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut roll = rng.range_u64(0, total - 1);
        for (kind, w) in &self.weights {
            if roll < *w {
                return *kind;
            }
            roll -= w;
        }
        self.weights[0].0
    }
}

struct Outcome {
    latency: Histogram,
    ok: u64,
    errors: u64,
    retries: u64,
    warm_hits: u64,
}

fn main() {
    let mut addr = "127.0.0.1:8321".to_string();
    let mut connections = 4usize;
    let mut requests = 64usize;
    let mut mix_spec = "warm=8,cold=1,task=1".to_string();
    let mut seed: u64 = 0x10AD_2018;
    let mut profile = "quick".to_string();
    let mut out_path: Option<String> = None;
    let mut mode_ping = false;
    let mut mode_shutdown = false;
    let mut mode_verify_warm = false;
    let mut mode_one: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| die("--addr needs HOST:PORT")),
            "--connections" => {
                connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--connections needs a positive integer"));
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--requests needs a positive integer"));
            }
            "--mix" => mix_spec = args.next().unwrap_or_else(|| die("--mix needs a spec")),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--profile" => profile = args.next().unwrap_or_else(|| die("--profile needs a name")),
            "--out" => out_path = Some(args.next().unwrap_or_else(|| die("--out needs a path"))),
            "--ping" => mode_ping = true,
            "--shutdown" => mode_shutdown = true,
            "--verify-warm" => mode_verify_warm = true,
            "--one" => mode_one = Some(args.next().unwrap_or_else(|| die("--one needs a label"))),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen --addr HOST:PORT [--connections N] [--requests N]\n\
                     \x20              [--mix warm=8,cold=1,task=1] [--seed S]\n\
                     \x20      or: --ping | --shutdown | --verify-warm |\n\
                     \x20          --one LABEL [--profile quick|full] [--out PATH]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    if mode_ping {
        let body = simple(&addr, "GET", "/healthz", "");
        println!("{}", body.trim_end());
        return;
    }
    if mode_shutdown {
        let body = simple(&addr, "POST", "/v1/shutdown", "{}");
        println!("{}", body.trim_end());
        return;
    }
    if let Some(label) = mode_one {
        let req = format!("{{\"task\": {label:?}, \"profile\": {profile:?}, \"seed\": {seed}}}");
        let resp = request_with_retry(&addr, "/v1/experiments", &req, 100)
            .unwrap_or_else(|e| die(&format!("task request: {e}")));
        if resp.status != 200 {
            die(&format!(
                "task request failed: {} {}",
                resp.status,
                resp.text()
            ));
        }
        match out_path {
            Some(path) => std::fs::write(&path, &resp.body)
                .unwrap_or_else(|e| die(&format!("writing {path}: {e}"))),
            None => {
                std::io::stdout().write_all(&resp.body).unwrap();
            }
        }
        return;
    }
    if mode_verify_warm {
        verify_warm(&addr, seed);
        return;
    }

    let mix = Mix::parse(&mix_spec).unwrap_or_else(|e| die(&e));
    eprintln!(
        "loadgen: {addr} connections={connections} requests={requests} mix={mix_spec} seed={seed:#x}"
    );
    let connections = connections.max(1);
    let per = requests / connections;
    let extra = requests % connections;
    let t0 = Instant::now();
    let outcomes: Vec<Outcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let n = per + usize::from(c < extra);
                let addr = addr.clone();
                let mix = mix.clone();
                let conn_seed = derive_seed(seed, &format!("conn/{c}"));
                s.spawn(move || run_connection(&addr, n, &mix, conn_seed, seed))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let mut latency = Histogram::new();
    let (mut ok, mut errors, mut retries, mut warm_hits) = (0u64, 0u64, 0u64, 0u64);
    for o in &outcomes {
        latency.merge(&o.latency);
        ok += o.ok;
        errors += o.errors;
        retries += o.retries;
        warm_hits += o.warm_hits;
    }
    println!(
        "loadgen: ok={ok} errors={errors} retries_503={retries} warm_hits={warm_hits} \
         wall_s={:.2} rps={:.1}",
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "loadgen: latency_us p50={} p90={} p99={} max={}",
        latency.percentile(50.0),
        latency.percentile(90.0),
        latency.percentile(99.0),
        latency.max(),
    );
    if errors > 0 {
        std::process::exit(1);
    }
}

/// One connection's request loop. Reconnects on transport errors; `503`
/// responses are retried with backoff and counted, never treated as
/// failures unless the budget runs out. Warm requests key their sessions
/// off the run-wide `global_seed` so all connections share (and so hit)
/// the same few cached checkpoints; cold requests perturb the
/// connection-local seed to force fresh warm-ups.
fn run_connection(addr: &str, n: usize, mix: &Mix, conn_seed: u64, global_seed: u64) -> Outcome {
    let mut rng = SplitMix64::new(conn_seed);
    let mut out = Outcome {
        latency: Histogram::new(),
        ok: 0,
        errors: 0,
        retries: 0,
        warm_hits: 0,
    };
    let mut client = None;
    for i in 0..n {
        let body = request_body(mix.pick(&mut rng), &mut rng, conn_seed, global_seed, i);
        let t0 = Instant::now();
        let mut attempts = 0;
        let resolved = loop {
            attempts += 1;
            if attempts > 50 {
                break None;
            }
            if client.is_none() {
                match Client::connect(addr) {
                    Ok(c) => client = Some(c),
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                }
            }
            match client.as_mut().unwrap().post_json("/v1/experiments", &body) {
                Ok(resp) if resp.status == 503 => {
                    out.retries += 1;
                    // The server suggests whole seconds; stay snappy in
                    // tests while still backing off.
                    std::thread::sleep(Duration::from_millis(25));
                }
                Ok(resp) => break Some(resp),
                Err(_) => {
                    client = None; // reconnect and retry
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        out.latency
            .record(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        match resolved {
            Some(resp) if resp.status == 200 => {
                out.ok += 1;
                if resp.header("x-csd-warm") == Some("1") {
                    out.warm_hits += 1;
                }
            }
            _ => out.errors += 1,
        }
    }
    out
}

/// The request body for one drawn kind. Warm requests rotate a small set
/// of sessions (so the cache hits); cold requests force fresh warm-ups.
fn request_body(
    kind: Kind,
    rng: &mut SplitMix64,
    conn_seed: u64,
    global_seed: u64,
    i: usize,
) -> String {
    match kind {
        Kind::Warm => {
            let victims = ["aes-enc", "blowfish-enc", "rsa-enc"];
            let victim = victims[rng.range_u64(0, victims.len() as u64 - 1) as usize];
            let stealth = rng.range_u64(0, 1) == 1;
            let watchdog = [1000u64, 2000][rng.range_u64(0, 1) as usize];
            format!(
                "{{\"experiment\": {{\"victim\": {victim:?}, \"pipeline\": \"opt\", \
                 \"stealth\": {stealth}, \"watchdog\": {watchdog}, \"blocks\": 2, \
                 \"seed\": {global_seed}}}}}"
            )
        }
        Kind::Cold => {
            let fresh = conn_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            format!(
                "{{\"experiment\": {{\"victim\": \"aes-enc\", \"pipeline\": \"opt\", \
                 \"blocks\": 2, \"seed\": {fresh}, \"cold\": true}}}}"
            )
        }
        Kind::Task => "{\"task\": \"table1\", \"profile\": \"quick\"}".to_string(),
        Kind::Devec => {
            "{\"devec\": {\"workload\": \"gcc\", \"policy\": \"csd-devec\", \"scale\": 0.02}}"
                .to_string()
        }
    }
}

/// Posts the same experiment cold then warm and asserts the bodies are
/// byte-identical — the session-cache contract, checked over the wire.
fn verify_warm(addr: &str, seed: u64) {
    let spec = format!(
        "{{\"victim\": \"aes-enc\", \"pipeline\": \"opt\", \"stealth\": true, \
         \"watchdog\": 2000, \"blocks\": 2, \"seed\": {seed}}}"
    );
    let cold_body = format!(
        "{{\"experiment\": {{\"cold\": true, {}}}}}",
        &spec[1..spec.len() - 1]
    );
    let warm_body = format!("{{\"experiment\": {spec}}}");
    let cold = request_with_retry(addr, "/v1/experiments", &cold_body, 100)
        .unwrap_or_else(|e| die(&format!("cold run: {e}")));
    if cold.status != 200 {
        die(&format!("cold run failed: {} {}", cold.status, cold.text()));
    }
    let warm = request_with_retry(addr, "/v1/experiments", &warm_body, 100)
        .unwrap_or_else(|e| die(&format!("warm run: {e}")));
    if warm.status != 200 {
        die(&format!("warm run failed: {} {}", warm.status, warm.text()));
    }
    if warm.header("x-csd-warm") != Some("1") {
        die("second run was not served from the session cache");
    }
    if cold.body != warm.body {
        die("warm fork bytes differ from cold run bytes");
    }
    println!(
        "loadgen: verify-warm ok ({} identical bytes, warm fork hit the cache)",
        warm.body.len()
    );
}

fn request_with_retry(
    addr: &str,
    target: &str,
    body: &str,
    max_attempts: u32,
) -> std::io::Result<ClientResponse> {
    let mut last_err = None;
    for _ in 0..max_attempts {
        let mut client = match Client::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
        };
        match client.post_json(target, body) {
            Ok(resp) if resp.status == 503 => std::thread::sleep(Duration::from_millis(25)),
            Ok(resp) => return Ok(resp),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retries exhausted")))
}

fn simple(addr: &str, method: &str, target: &str, body: &str) -> String {
    let mut client = Client::connect(addr).unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
    let resp = client
        .request(method, target, body.as_bytes())
        .unwrap_or_else(|e| die(&format!("{method} {target}: {e}")));
    if resp.status != 200 {
        die(&format!(
            "{method} {target}: {} {}",
            resp.status,
            resp.text()
        ));
    }
    resp.text()
}

fn die(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}
