//! The `csd-serve` daemon entry point.
//!
//! ```text
//! cargo run --release -p csd-serve --bin csd-serve -- \
//!     [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]
//! ```
//!
//! Serves until SIGINT/SIGTERM or `POST /v1/shutdown`, drains in-flight
//! work, and exits 0.

use csd_serve::{install_signal_handler, Server, ServerConfig};

fn main() {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| die("--addr needs HOST:PORT")),
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--queue-cap" => {
                cfg.queue_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queue-cap needs a positive integer"));
            }
            "--cache-cap" => {
                cfg.cache_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cache-cap needs a positive integer"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: csd-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]\n\
                     Serves the experiment grid over HTTP. Endpoints:\n\
                     \x20 GET  /healthz          liveness\n\
                     \x20 GET  /metrics          counters + latency histograms\n\
                     \x20 GET  /v1/tasks         task labels (?filter=SUBSTR)\n\
                     \x20 POST /v1/experiments   run a task / experiment / devec job\n\
                     \x20 GET  /v1/stream        NDJSON event telemetry for one experiment\n\
                     \x20 POST /v1/shutdown      graceful drain + exit 0\n\
                     SIGINT/SIGTERM also drain gracefully."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    install_signal_handler();
    let server = Server::bind(&cfg).unwrap_or_else(|e| die(&format!("bind {}: {e}", cfg.addr)));
    eprintln!(
        "csd-serve: listening on {} (workers={} queue-cap={} cache-cap={})",
        server.local_addr(),
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_cap
    );
    if let Err(e) = server.run() {
        die(&format!("serve: {e}"));
    }
    eprintln!("csd-serve: drained, exiting");
}

fn die(msg: &str) -> ! {
    eprintln!("csd-serve: {msg}");
    std::process::exit(2);
}
