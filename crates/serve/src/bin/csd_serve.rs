//! The `csd-serve` daemon entry point.
//!
//! ```text
//! cargo run --release -p csd-serve --bin csd-serve -- \
//!     [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N] \
//!     [--conn-deadline-ms MS] [--write-timeout-ms MS]
//! ```
//!
//! Serves until SIGINT/SIGTERM or `POST /v1/shutdown`, drains in-flight
//! work, and exits 0. Setting `CSD_FAULT_SEED` arms the fault-injection
//! endpoint (`{"fault": ...}` jobs) for chaos testing; never set it on a
//! daemon you care about.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use csd_serve::{install_signal_handler, FaultMode, Server, ServerConfig};
use std::time::Duration;

fn main() {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| die("--addr needs HOST:PORT")),
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--queue-cap" => {
                cfg.queue_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queue-cap needs a positive integer"));
            }
            "--cache-cap" => {
                cfg.cache_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cache-cap needs a positive integer"));
            }
            "--conn-deadline-ms" => {
                cfg.conn_deadline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| die("--conn-deadline-ms needs a positive integer"));
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| die("--write-timeout-ms needs a positive integer"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: csd-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]\n\
                     \x20                [--conn-deadline-ms MS] [--write-timeout-ms MS]\n\
                     Serves the experiment grid over HTTP. Endpoints:\n\
                     \x20 GET  /healthz          liveness\n\
                     \x20 GET  /v1/health        version, queue depth, workers alive\n\
                     \x20 GET  /metrics          counters + latency histograms\n\
                     \x20 GET  /v1/tasks         task labels (?filter=SUBSTR)\n\
                     \x20 POST /v1/experiments   run a task / experiment / devec job\n\
                     \x20 GET  /v1/stream        NDJSON event telemetry for one experiment\n\
                     \x20 POST /v1/shutdown      graceful drain + exit 0\n\
                     SIGINT/SIGTERM also drain gracefully.\n\
                     CSD_FAULT_SEED=N arms fault injection ({{\"fault\": ...}} jobs)."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    cfg.fault = FaultMode::from_env();
    install_signal_handler();
    let server = Server::bind(&cfg).unwrap_or_else(|e| die(&format!("bind {}: {e}", cfg.addr)));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| die(&format!("local addr: {e}")));
    eprintln!(
        "csd-serve: listening on {addr} (workers={} queue-cap={} cache-cap={}{})",
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_cap,
        match cfg.fault {
            Some(f) => format!(" FAULT-INJECTION ARMED seed={:#x}", f.seed),
            None => String::new(),
        }
    );
    if let Err(e) = server.run() {
        die(&format!("serve: {e}"));
    }
    eprintln!("csd-serve: drained, exiting");
}

fn die(msg: &str) -> ! {
    eprintln!("csd-serve: {msg}");
    std::process::exit(2);
}
