//! Deterministic fault injection for the daemon.
//!
//! Fault mode is armed by setting `CSD_FAULT_SEED` in the daemon's
//! environment (any `u64`; the value seeds the *client-side* chaos
//! schedule in `loadgen --chaos`, so one seed reproduces one run
//! end-to-end). When armed, `POST /v1/experiments` accepts a fourth job
//! kind:
//!
//! ```json
//! {"fault": {"kind": "panic", "poison": true}}
//! {"fault": {"kind": "sleep", "ms": 50}}
//! ```
//!
//! * `panic` — the worker executing the job panics (with `"poison":
//!   true` it panics *while holding the session-cache lock*, the worst
//!   case for the old `lock().unwrap()` code). The daemon must answer
//!   `500` with a `class: "run"` body and keep serving.
//! * `sleep` — the worker stalls for `ms` milliseconds; chaos runs use
//!   it to hold workers busy and drive the admission queue into
//!   saturation deterministically.
//!
//! When fault mode is *not* armed these bodies are refused at admission
//! (`403`, class `admission`) so a production daemon cannot be panicked
//! by request. The other three injection points — slow-client,
//! partial-write, malformed-frame — need no server cooperation; the
//! chaos client drives them straight through the socket.

use csd_telemetry::Json;

/// Marker that the daemon accepts injected-fault jobs. Carried in the
/// server config; constructed from `CSD_FAULT_SEED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMode {
    /// The seed shared with the chaos client (diagnostic only on the
    /// server side — server faults are driven per-request).
    pub seed: u64,
}

impl FaultMode {
    /// Reads `CSD_FAULT_SEED`; `None` (fault mode off) when unset or
    /// unparsable.
    pub fn from_env() -> Option<FaultMode> {
        let raw = std::env::var("CSD_FAULT_SEED").ok()?;
        raw.trim().parse().ok().map(|seed| FaultMode { seed })
    }
}

/// One injected-fault job, parsed from a `{"fault": ...}` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic inside the worker; with `poison` the panic unwinds through
    /// the session-cache critical section.
    Panic {
        /// Panic while holding the session-cache lock.
        poison: bool,
    },
    /// Stall the worker for this many milliseconds, then answer 200.
    Sleep {
        /// Stall duration in milliseconds (capped at parse time).
        ms: u64,
    },
}

/// Longest accepted injected stall; keeps a chaos schedule from wedging
/// the drain deadline.
const MAX_SLEEP_MS: u64 = 2_000;

impl FaultSpec {
    /// Parses the `"fault"` object of a request body.
    pub fn from_json(j: &Json) -> Result<FaultSpec, String> {
        match j.get("kind").and_then(Json::as_str) {
            Some("panic") => {
                let poison = match j.get("poison") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err("fault.poison must be a boolean".to_string()),
                };
                Ok(FaultSpec::Panic { poison })
            }
            Some("sleep") => {
                let ms = match j.get("ms") {
                    None => 10,
                    Some(v) => v
                        .as_u64()
                        .ok_or_else(|| "fault.ms must be a non-negative integer".to_string())?,
                };
                if ms > MAX_SLEEP_MS {
                    return Err(format!("fault.ms must be <= {MAX_SLEEP_MS}"));
                }
                Ok(FaultSpec::Sleep { ms })
            }
            Some(other) => Err(format!("unknown fault kind {other:?} (panic / sleep)")),
            None => Err("fault.kind must be \"panic\" or \"sleep\"".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fault_specs() {
        let j = Json::parse("{\"kind\": \"panic\", \"poison\": true}").unwrap();
        assert_eq!(
            FaultSpec::from_json(&j),
            Ok(FaultSpec::Panic { poison: true })
        );
        let j = Json::parse("{\"kind\": \"panic\"}").unwrap();
        assert_eq!(
            FaultSpec::from_json(&j),
            Ok(FaultSpec::Panic { poison: false })
        );
        let j = Json::parse("{\"kind\": \"sleep\", \"ms\": 25}").unwrap();
        assert_eq!(FaultSpec::from_json(&j), Ok(FaultSpec::Sleep { ms: 25 }));
        let j = Json::parse("{\"kind\": \"sleep\", \"ms\": 999999}").unwrap();
        assert!(FaultSpec::from_json(&j).is_err(), "stalls are capped");
        let j = Json::parse("{\"kind\": \"segfault\"}").unwrap();
        assert!(FaultSpec::from_json(&j).is_err());
        let j = Json::parse("{}").unwrap();
        assert!(FaultSpec::from_json(&j).is_err());
    }
}
