//! The `csd-serve` daemon: accept loop, worker pool, routing, and
//! graceful shutdown.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!   accept loop ──► connection threads ──► bounded job queue ──► workers
//!   (nonblocking)   (parse HTTP, admit)    (try_push / 503)      (simulate)
//!        │                 ▲                                        │
//!        │                 └──────────── reply channel ◄────────────┘
//!        └─ shutdown: stop accepting → close queue → drain → join → exit 0
//! ```
//!
//! Connection threads do I/O only; every simulation runs on one of the
//! fixed worker threads, so a burst of clients degrades into `503 +
//! Retry-After` instead of unbounded thread fan-out. `GET /v1/stream`
//! is the one exception: it owns its connection for the duration and
//! runs the simulation on a dedicated thread that feeds NDJSON back
//! through a channel.
//!
//! ## Failure containment
//!
//! A panicking job is caught at the worker (`catch_unwind`), answered
//! with a `500` carrying the panic message, and counted; locks the
//! panic unwound through are poison-recovered on the next access (see
//! [`crate::lock`]). Stalled peers cannot pin a connection thread: reads
//! poll with a timeout, writes carry a timeout, and each connection has
//! an overall deadline for producing a complete request. Every failure
//! is classified per [`crate::error::ErrorClass`] in `/metrics`.

use crate::error::{panic_message, ErrorClass, ServeError};
use crate::fault::{FaultMode, FaultSpec};
use crate::http::{Poll, Request, RequestReader, Response};
use crate::metrics::Metrics;
use crate::queue::{Bounded, PushError};
use crate::session::SessionCache;
use csd_bench::run_devec;
use csd_bench::suite::{run_filtered, SuiteConfig};
use csd_bench::tasks::filter_tasks;
use csd_exp::{
    apply_leg_mode, measure_blocks, pipelines, run_plan, security_core, security_victims, warm_up,
    ExperimentSpec,
};
use csd_telemetry::{
    DecodeEvent, EventSink, GateEvent, Json, SplitMix64, StealthWindowEvent, ToJson,
};
use csd_workloads::{specs, Workload};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8321` (port `0` for tests).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (admission control).
    pub queue_cap: usize,
    /// Warmed sessions kept in the LRU cache.
    pub cache_cap: usize,
    /// How long a connection may take to deliver one complete request
    /// (slowloris guard). Counted from accept and from the end of each
    /// served request; idle keep-alive connections are closed with
    /// `408` when it expires.
    pub conn_deadline: Duration,
    /// Socket write timeout — a peer that stops reading cannot pin a
    /// connection thread mid-response.
    pub write_timeout: Duration,
    /// Fault-injection mode (`CSD_FAULT_SEED`); `None` refuses
    /// `{"fault": ...}` jobs at admission.
    pub fault: Option<FaultMode>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8321".to_string(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 16,
            conn_deadline: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            fault: None,
        }
    }
}

/// What a worker executes for one admitted request.
enum JobSpec {
    /// Run an experiment plan: fork-or-warm a session, measure every leg
    /// (see [`ExperimentSpec`]).
    Experiment(ExperimentSpec),
    /// Run a grid-task subset — byte-identical to `suite --filter`.
    Task {
        filter: String,
        profile: &'static str,
        seed: u64,
    },
    /// Run one workload under one VPU policy.
    Devec {
        workload: &'static str,
        policy: &'static str,
        scale: f64,
    },
    /// An injected fault (only admitted when fault mode is armed).
    Fault(FaultSpec),
}

struct Job {
    spec: JobSpec,
    reply: mpsc::Sender<Response>,
    enqueued: Instant,
}

struct State {
    metrics: Metrics,
    cache: SessionCache,
    queue: Bounded<Job>,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    conn_deadline: Duration,
    write_timeout: Duration,
    fault: Option<FaultMode>,
    workers: usize,
}

impl State {
    /// Builds a response for a classified failure and counts it.
    fn fail(&self, err: &ServeError) -> Response {
        self.metrics.record_error(err.class, err.status);
        let resp = err.response();
        if err.status == 503 {
            resp.with_header("Retry-After", "1")
        } else {
            resp
        }
    }
}

/// Handle for requesting a graceful shutdown from another thread (tests,
/// signal observers).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<State>);

impl ShutdownHandle {
    /// Requests a graceful shutdown: stop accepting, drain, exit.
    pub fn trigger(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.0.shutdown.load(Ordering::SeqCst)
    }
}

/// Set by the SIGINT/SIGTERM handler; observed by every accept loop.
static SIGNAL_HIT: AtomicBool = AtomicBool::new(false);

/// Installs a SIGINT + SIGTERM handler that requests graceful shutdown.
/// Signal handlers may only touch async-signal-safe state, so the
/// handler sets one global flag and the accept loop polls it.
#[cfg(unix)]
pub fn install_signal_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_HIT.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// No-op off unix; the shutdown endpoint still works everywhere.
#[cfg(not(unix))]
pub fn install_signal_handler() {}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    state: Arc<State>,
}

impl Server {
    /// Binds the listen socket (port `0` picks a free port).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            workers: cfg.workers.max(1),
            state: Arc::new(State {
                metrics: Metrics::new(),
                cache: SessionCache::new(cfg.cache_cap),
                queue: Bounded::new(cfg.queue_cap),
                shutdown: AtomicBool::new(false),
                active_conns: AtomicUsize::new(0),
                conn_deadline: cfg.conn_deadline.max(Duration::from_millis(10)),
                write_timeout: cfg.write_timeout.max(Duration::from_millis(10)),
                fault: cfg.fault,
                workers: cfg.workers.max(1),
            }),
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.state))
    }

    /// Serves until shutdown is requested (handle, endpoint, or signal),
    /// then drains: admitted jobs finish, their responses are written,
    /// workers and connections wind down, and the call returns `Ok(())`
    /// — even if a worker thread died along the way (the loss is logged
    /// and counted in `/metrics` as `workers_lost`; admitted work is
    /// still drained by the surviving workers).
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let worker_handles: Vec<_> = (0..self.workers)
            .map(|_| {
                let state = Arc::clone(&self.state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();

        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || SIGNAL_HIT.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    state.active_conns.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        // A connection-thread panic (a bug, not a job
                        // panic — those are caught at the worker) must
                        // not abort the process or leak the counter.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let _ = handle_connection(&stream, &state);
                        }));
                        if let Err(payload) = caught {
                            Metrics::bump(&state.metrics.errors_io);
                            eprintln!(
                                "csd-serve: connection thread panicked: {}",
                                panic_message(payload.as_ref())
                            );
                        }
                        state.active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: stop admitting, finish queued jobs, then give connection
        // threads (blocked on reply channels or mid-write) a bounded
        // window to flush before returning. A worker that died from a
        // non-job panic is logged and counted — one lost thread must not
        // turn a clean drain into an abort.
        self.state.queue.close();
        for h in worker_handles {
            if let Err(payload) = h.join() {
                Metrics::bump(&self.state.metrics.workers_lost);
                eprintln!(
                    "csd-serve: worker thread lost outside job execution: {}",
                    panic_message(payload.as_ref())
                );
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.state.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// Pulls jobs until the queue closes and drains; answers every job.
fn worker_loop(state: &State) {
    while let Some(job) = state.queue.pop() {
        let wait = job.enqueued.elapsed();
        state
            .metrics
            .record_queue_wait_us(wait.as_micros().min(u128::from(u64::MAX)) as u64);
        let t0 = Instant::now();
        // A job that panics (a simulation assertion, an injected fault)
        // must not take the worker down with it — answer 500 with the
        // panic message and keep serving. Locks the panic poisoned are
        // recovered at their next use.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(&job.spec, state)
        }));
        state
            .metrics
            .record_run_us(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        let response = match result {
            Ok(Ok(r)) => r,
            Ok(Err(err)) => state.fail(&err),
            Err(payload) => {
                Metrics::bump(&state.metrics.worker_panics);
                state.fail(&ServeError::run(format!(
                    "experiment panicked: {}",
                    panic_message(payload.as_ref())
                )))
            }
        };
        // The connection thread may have vanished; nothing to do then.
        let _ = job.reply.send(response);
    }
}

fn execute_job(spec: &JobSpec, state: &State) -> Result<Response, ServeError> {
    match spec {
        JobSpec::Experiment(exp) => {
            let result = run_plan(exp, &state.cache, 1).map_err(|e| ServeError::run(e.0))?;
            Metrics::bump(&state.metrics.experiments);
            Metrics::bump(if result.warm {
                &state.metrics.warm_hits
            } else {
                &state.metrics.cold_runs
            });
            state
                .metrics
                .plan_legs
                .fetch_add(result.legs.len() as u64, Ordering::Relaxed);
            // Warmness goes in a header so warm and cold bodies stay
            // byte-identical.
            Ok(Response::json(200, &result.to_json())
                .with_header("X-CSD-Warm", if result.warm { "1" } else { "0" }))
        }
        JobSpec::Task {
            filter,
            profile,
            seed,
        } => {
            // jobs=1: this worker thread *is* the parallelism. The report
            // omits the job count, so these bytes still equal a CLI run at
            // any --jobs setting.
            let cfg = SuiteConfig::named(profile, *seed, 1)
                .ok_or_else(|| ServeError::run(format!("profile {profile:?} vanished")))?;
            let doc = run_filtered(&cfg, filter);
            Metrics::bump(&state.metrics.experiments);
            Ok(Response::json_bytes(200, doc.pretty().into_bytes()))
        }
        JobSpec::Devec {
            workload,
            policy,
            scale,
        } => {
            let spec = specs()
                .into_iter()
                .find(|s| s.name == *workload)
                .ok_or_else(|| ServeError::run(format!("workload {workload:?} vanished")))?;
            let (pname, vpu_policy) = *policies_by_name(policy)
                .ok_or_else(|| ServeError::run(format!("policy {policy:?} vanished")))?;
            let run = run_devec(&Workload::with_scale(spec, *scale), vpu_policy);
            Metrics::bump(&state.metrics.experiments);
            Ok(Response::json(
                200,
                &Json::obj([
                    ("workload", Json::from(*workload)),
                    ("policy", Json::from(pname)),
                    ("scale", Json::from(*scale)),
                    ("run", run.to_json()),
                ]),
            ))
        }
        JobSpec::Fault(fault) => {
            Metrics::bump(&state.metrics.injected_faults);
            match fault {
                FaultSpec::Panic { poison: true } => state.cache.panic_holding_lock(),
                FaultSpec::Panic { poison: false } => panic!("injected fault: panic in job"),
                FaultSpec::Sleep { ms } => {
                    std::thread::sleep(Duration::from_millis(*ms));
                    Ok(Response::json(
                        200,
                        &Json::obj([("fault", Json::from("sleep")), ("ms", Json::from(*ms))]),
                    ))
                }
            }
        }
    }
}

fn policies_by_name(name: &str) -> Option<&'static (&'static str, csd::VpuPolicy)> {
    // `policies()` returns by value; leak-free static lookup via a once
    // cell would be overkill for three entries — rebuild and match.
    static POLICIES: std::sync::OnceLock<[(&'static str, csd::VpuPolicy); 3]> =
        std::sync::OnceLock::new();
    POLICIES
        .get_or_init(csd_exp::policies)
        .iter()
        .find(|(n, _)| *n == name)
}

/// Serves one connection: keep-alive request loop with a read timeout so
/// shutdown is noticed between requests, a write timeout so a peer that
/// stops reading cannot pin the thread, and an overall per-request
/// deadline so a dribbling (slowloris) peer is cut off with `408`.
fn handle_connection(stream: &TcpStream, state: &State) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_write_timeout(Some(state.write_timeout))?;
    let mut reader = RequestReader::new(stream.try_clone()?);
    let mut out = stream.try_clone()?;
    let mut deadline = Instant::now() + state.conn_deadline;
    loop {
        match reader.next_request()? {
            Poll::Pending => {
                if state.shutdown.load(Ordering::SeqCst) || SIGNAL_HIT.load(Ordering::SeqCst) {
                    return Ok(());
                }
                if Instant::now() >= deadline {
                    // Too slow to deliver a complete request — answer
                    // 408 best-effort and drop the connection.
                    Metrics::bump(&state.metrics.deadline_closes);
                    state.metrics.record_error(ErrorClass::Io, 408);
                    let err = ServeError {
                        class: ErrorClass::Io,
                        status: 408,
                        message: "connection deadline exceeded".to_string(),
                    };
                    let _ = err.response().write_to(&mut out, true);
                    return Ok(());
                }
            }
            Poll::Eof => return Ok(()),
            Poll::Bad(failure) => {
                let err = match failure {
                    crate::http::ParseFailure::TooLarge => ServeError {
                        class: ErrorClass::Parse,
                        status: 413,
                        message: "request too large".to_string(),
                    },
                    crate::http::ParseFailure::Malformed(m) => ServeError::parse(m),
                };
                state.fail(&err).write_to(&mut out, true)?;
                return Ok(());
            }
            Poll::Ready(req) => {
                Metrics::bump(&state.metrics.requests);
                if req.method == "GET" && req.path == "/v1/stream" {
                    // Takes over the connection; always closes after.
                    return serve_stream(&req, &mut out, state);
                }
                let draining =
                    state.shutdown.load(Ordering::SeqCst) || SIGNAL_HIT.load(Ordering::SeqCst);
                let response = match route(&req, state) {
                    Ok(r) => r,
                    Err(err) => state.fail(&err),
                };
                let close = req.wants_close() || draining;
                response.write_to(&mut out, close)?;
                if close {
                    return Ok(());
                }
                // The next request gets a fresh deadline window.
                deadline = Instant::now() + state.conn_deadline;
            }
        }
    }
}

fn route(req: &Request, state: &State) -> Result<Response, ServeError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(Response::json(200, &Json::obj([("ok", Json::Bool(true))]))),
        ("GET", "/v1/health") => {
            // Cheap by construction: answered on the connection thread
            // from atomics, never queued behind simulation work — a
            // cluster scheduler can poll it aggressively for liveness
            // and load-aware dispatch.
            let lost = state.metrics.workers_lost.load(Ordering::Relaxed);
            Ok(Response::json(
                200,
                &Json::obj([
                    ("ok", Json::Bool(true)),
                    ("version", Json::from(env!("CARGO_PKG_VERSION"))),
                    ("queue_depth", Json::from(state.queue.len() as u64)),
                    ("workers", Json::from(state.workers as u64)),
                    (
                        "workers_alive",
                        Json::from((state.workers as u64).saturating_sub(lost)),
                    ),
                    (
                        "draining",
                        Json::Bool(state.shutdown.load(Ordering::SeqCst)),
                    ),
                ]),
            ))
        }
        ("GET", "/metrics") => {
            let mut doc = state.metrics.to_json();
            doc.push_member("queue_depth", Json::from(state.queue.len() as u64));
            doc.push_member("sessions", Json::from(state.cache.len() as u64));
            doc.push_member("session_hits", Json::from(state.cache.hits()));
            doc.push_member("session_misses", Json::from(state.cache.misses()));
            Ok(Response::json(200, &doc))
        }
        ("GET", "/v1/tasks") => {
            let filter = req.query_param("filter").unwrap_or("");
            let cfg = SuiteConfig::quick(0, 1); // labels are profile-independent
            let labels: Vec<Json> = filter_tasks(&cfg, filter)
                .iter()
                .map(|t| Json::from(t.label()))
                .collect();
            Ok(Response::json(
                200,
                &Json::obj([
                    ("count", Json::from(labels.len() as u64)),
                    ("tasks", Json::Arr(labels)),
                ]),
            ))
        }
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            Ok(Response::json(
                200,
                &Json::obj([("ok", Json::Bool(true)), ("draining", Json::Bool(true))]),
            ))
        }
        ("POST", "/v1/experiments") => submit_experiment(req, state),
        (_, "/healthz" | "/v1/health" | "/metrics" | "/v1/tasks" | "/v1/stream")
        | (_, "/v1/experiments") => Err(ServeError::admission(405, "method not allowed")),
        _ => Err(ServeError::admission(404, "no such route")),
    }
}

/// Parses, validates, and admits an experiment request, then blocks on
/// the worker's reply. Admission failures answer immediately — the
/// client is never left hanging on a full queue.
fn submit_experiment(req: &Request, state: &State) -> Result<Response, ServeError> {
    let spec = parse_experiment_body(&req.body, state.fault)?;
    let (tx, rx) = mpsc::channel();
    let job = Job {
        spec,
        reply: tx,
        enqueued: Instant::now(),
    };
    if let Err(err) = state.queue.try_push(job) {
        let msg = match err {
            PushError::Full(_) => "queue full",
            PushError::Closed(_) => "server draining",
        };
        return Err(ServeError::admission(503, msg));
    }
    match rx.recv() {
        Ok(response) => Ok(response),
        Err(_) => {
            // Workers exited mid-drain with the job still queued; the
            // queue drains admitted jobs before close, so this only
            // happens if every worker was lost entirely.
            Err(ServeError::io("worker lost"))
        }
    }
}

fn parse_experiment_body(body: &[u8], fault: Option<FaultMode>) -> Result<JobSpec, ServeError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ServeError::parse("body must be UTF-8 JSON"))?;
    let doc =
        Json::parse(text).map_err(|e| ServeError::parse(format!("body is not valid JSON: {e}")))?;

    if let Some(label) = doc.get("task") {
        let filter = label
            .as_str()
            .ok_or_else(|| ServeError::parse("task must be a string label/substring"))?
            .to_string();
        let profile = match doc.get("profile") {
            None => "quick",
            Some(p) => match p.as_str() {
                Some("quick") => "quick",
                Some("full") => "full",
                _ => return Err(ServeError::parse("profile must be \"quick\" or \"full\"")),
            },
        };
        let seed = match doc.get("seed") {
            None => 0xC5D_2018,
            Some(s) => s
                .as_u64()
                .ok_or_else(|| ServeError::parse("seed must be a non-negative integer"))?,
        };
        let cfg = SuiteConfig::named(profile, seed, 1)
            .ok_or_else(|| ServeError::parse(format!("unknown profile {profile:?}")))?;
        if filter_tasks(&cfg, &filter).is_empty() {
            return Err(ServeError::parse(format!(
                "task {filter:?} matches nothing (try GET /v1/tasks)"
            )));
        }
        return Ok(JobSpec::Task {
            filter,
            profile,
            seed,
        });
    }
    if let Some(exp) = doc.get("experiment") {
        return ExperimentSpec::from_json(exp)
            .map(JobSpec::Experiment)
            .map_err(ServeError::parse);
    }
    if let Some(d) = doc.get("devec") {
        let workload_name = d
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::parse("devec.workload must be a string"))?;
        let workload = specs()
            .into_iter()
            .find(|s| s.name == workload_name)
            .map(|s| s.name)
            .ok_or_else(|| ServeError::parse(format!("unknown workload {workload_name:?}")))?;
        let policy_name = d
            .get("policy")
            .and_then(Json::as_str)
            .unwrap_or("csd-devec");
        let policy = policies_by_name(policy_name)
            .map(|(n, _)| *n)
            .ok_or_else(|| ServeError::parse(format!("unknown policy {policy_name:?}")))?;
        let scale = match d.get("scale") {
            None => 0.05,
            Some(s) => s
                .as_f64()
                .ok_or_else(|| ServeError::parse("devec.scale must be a number"))?,
        };
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(ServeError::parse("devec.scale must be in (0, 1]"));
        }
        return Ok(JobSpec::Devec {
            workload,
            policy,
            scale,
        });
    }
    if let Some(f) = doc.get("fault") {
        if fault.is_none() {
            // Not a parse failure: the body is well-formed, the daemon
            // just refuses to hurt itself unless explicitly armed.
            return Err(ServeError::admission(
                403,
                "fault injection is disabled (set CSD_FAULT_SEED to arm)",
            ));
        }
        return FaultSpec::from_json(f)
            .map(JobSpec::Fault)
            .map_err(ServeError::parse);
    }
    Err(ServeError::parse(
        "body must contain one of \"task\", \"experiment\", \"devec\", \"fault\"",
    ))
}

// ---------------------------------------------------------------------
// NDJSON event streaming
// ---------------------------------------------------------------------

/// Engine-side sink that forwards every `sample`-th CSD event (up to
/// `max` total) as one compact JSON line. `try_send` keeps the simulation
/// from blocking on a slow reader; dropped lines are counted and
/// reported in the final summary.
struct StreamSink {
    tx: SyncSender<String>,
    sample: u64,
    max: u64,
    seen: u64,
    emitted: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl StreamSink {
    fn emit(&mut self, line: Json) {
        self.seen += 1;
        if !self.seen.is_multiple_of(self.sample)
            || self.emitted.load(Ordering::Relaxed) >= self.max
        {
            return;
        }
        match self.tx.try_send(line.dump()) {
            Ok(()) => {
                self.emitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl EventSink for StreamSink {
    fn on_decode(&mut self, e: &DecodeEvent) {
        self.emit(Json::obj([
            ("event", Json::from("decode")),
            ("addr", Json::from(e.addr)),
            ("context", Json::from(u64::from(e.context))),
            ("uops", Json::from(u64::from(e.uops))),
            ("decoy_uops", Json::from(u64::from(e.decoy_uops))),
        ]));
    }

    fn on_gate(&mut self, e: &GateEvent) {
        self.emit(Json::obj([
            ("event", Json::from("gate")),
            ("gated", Json::Bool(e.gated)),
            ("transitions", Json::from(e.transitions)),
        ]));
    }

    fn on_stealth_window(&mut self, e: &StealthWindowEvent) {
        self.emit(Json::obj([
            ("event", Json::from("stealth_window")),
            ("addr", Json::from(e.addr)),
            ("decoy_uops", Json::from(u64::from(e.decoy_uops))),
        ]));
    }
}

/// `GET /v1/stream?victim=..&stealth=..&blocks=..&sample=..&max=..` —
/// runs one experiment on a dedicated thread with a [`StreamSink`]
/// attached to the CSD engine, writing events as NDJSON while the
/// simulation runs and a `{"done":true,...}` summary line at the end.
fn serve_stream(req: &Request, out: &mut TcpStream, state: &State) -> std::io::Result<()> {
    let spec = match experiment_from_query(req) {
        Ok(spec) => spec,
        Err(msg) => {
            return state.fail(&ServeError::parse(msg)).write_to(out, true);
        }
    };
    let sample: u64 = req
        .query_param("sample")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
        .max(1);
    let max: u64 = req
        .query_param("max")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
        .clamp(1, 1_000_000);
    Metrics::bump(&state.metrics.streams);

    let (tx, rx) = mpsc::sync_channel::<String>(256);
    let emitted = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let sink = StreamSink {
        tx,
        sample,
        max,
        seen: 0,
        emitted: Arc::clone(&emitted),
        dropped: Arc::clone(&dropped),
    };
    let runner = std::thread::spawn(move || run_streamed(&spec, sink));

    // Head first: chunked-free NDJSON delimited by connection close.
    out.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )?;
    for line in rx {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
    }
    let metrics = match runner.join() {
        Ok(Ok(doc)) => doc,
        Ok(Err(err)) => {
            state.metrics.record_error(err.class, err.status);
            err.body()
        }
        Err(payload) => {
            Metrics::bump(&state.metrics.worker_panics);
            let err = ServeError::run(format!(
                "experiment panicked: {}",
                panic_message(payload.as_ref())
            ));
            state.metrics.record_error(err.class, err.status);
            err.body()
        }
    };
    let summary = Json::obj([
        ("done", Json::Bool(true)),
        ("events", Json::from(emitted.load(Ordering::Relaxed))),
        ("dropped", Json::from(dropped.load(Ordering::Relaxed))),
        ("metrics", metrics),
    ]);
    out.write_all(summary.dump().as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Builds an [`ExperimentSpec`] from `/v1/stream` query parameters.
fn experiment_from_query(req: &Request) -> Result<ExperimentSpec, String> {
    let mut obj = Json::Obj(Vec::new());
    for (key, value) in &req.query {
        let parsed = match key.as_str() {
            "victim" | "pipeline" => Json::from(value.as_str()),
            "stealth" | "cold" => match value.as_str() {
                "1" | "true" => Json::Bool(true),
                "0" | "false" => Json::Bool(false),
                _ => return Err(format!("{key} must be a boolean")),
            },
            "watchdog" | "blocks" | "seed" => Json::from(
                value
                    .parse::<u64>()
                    .map_err(|_| format!("{key} must be a non-negative integer"))?,
            ),
            "sample" | "max" => continue, // stream knobs, not experiment knobs
            other => return Err(format!("unknown parameter {other:?}")),
        };
        obj.push_member(key.as_str(), parsed);
    }
    ExperimentSpec::from_json(&obj)
}

/// Runs the spec's first leg with `sink` attached to the CSD engine for
/// the measured region; returns the metric document. Streams always run
/// cold and never populate the session cache — the attached sink makes
/// their warm state observably different from a cacheable one.
fn run_streamed(spec: &ExperimentSpec, sink: StreamSink) -> Result<Json, ServeError> {
    let victims = security_victims();
    let victim = victims
        .iter()
        .find(|v| v.name() == spec.victim)
        .ok_or_else(|| ServeError::run(format!("victim {:?} vanished", spec.victim)))?
        .as_ref();
    let (_, mk) = *pipelines()
        .iter()
        .find(|(n, _)| *n == spec.pipeline)
        .ok_or_else(|| ServeError::run(format!("pipeline {:?} vanished", spec.pipeline)))?;
    let leg = spec
        .legs
        .first()
        .ok_or_else(|| ServeError::run("experiment has no legs"))?;
    let mut core = security_core(victim, mk());
    let mut rng = SplitMix64::new(spec.seed);
    let mut input = vec![0u8; victim.input_len()];
    warm_up(&mut core, victim, &mut rng, &mut input);
    apply_leg_mode(&leg.mode, victim, &mut core).map_err(|e| ServeError::run(e.0))?;
    core.engine_mut().set_event_sink(Box::new(sink));
    let blocks = leg.blocks.unwrap_or(spec.blocks);
    let metrics = measure_blocks(&mut core, victim, &mut rng, &mut input, blocks);
    // Dropping the engine (and with it the sink's sender) closes the
    // NDJSON channel, which is what ends the reader loop.
    Ok(metrics.to_json())
}
