//! A blocking HTTP/1.1 client, just big enough for `loadgen` and the
//! end-to-end tests: keep-alive request/response over one `TcpStream`,
//! `Content-Length` or read-to-close bodies.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a generous timeout (experiments are slow).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        Ok(Client { stream })
    }

    /// Sends one request and reads the full response. `target` includes
    /// the query string. Returns an error if the server closed early.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: csd-serve\r\n");
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Convenience: `GET`.
    pub fn get(&mut self, target: &str) -> io::Result<ClientResponse> {
        self.request("GET", target, b"")
    }

    /// Convenience: `POST` with a JSON body.
    pub fn post_json(&mut self, target: &str, json: &str) -> io::Result<ClientResponse> {
        self.request("POST", target, json.as_bytes())
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut buf = Vec::new();
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before response head",
                    ))
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 response head"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();

        let mut body = buf.split_off(head_end + 4);
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        match content_length {
            Some(len) => {
                while body.len() < len {
                    let mut chunk = vec![0u8; len - body.len()];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "connection closed mid-body",
                            ))
                        }
                        Ok(n) => body.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                body.truncate(len);
            }
            None => {
                // Delimited by connection close (the NDJSON stream).
                let mut rest = Vec::new();
                self.stream.read_to_end(&mut rest)?;
                body.extend_from_slice(&rest);
            }
        }
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
