//! A blocking HTTP/1.1 client shared by `loadgen`, the end-to-end
//! tests, and the `csd-cluster` coordinator: keep-alive
//! request/response over one `TcpStream` ([`Client`]), plus the retry
//! substrate both consumers need — a seeded-jitter exponential
//! [`Backoff`] schedule and a [`RetryClient`] that reconnects on
//! transport errors and retries `503` rejections honoring
//! `Retry-After`, counting every recovery it performed.

use csd_telemetry::SplitMix64;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a generous timeout (experiments are slow).
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_with(addr, Duration::from_secs(600))
    }

    /// Connects with an explicit read timeout — the cluster scheduler
    /// uses a short one so a stalled worker surfaces as a timed-out
    /// request (retryable, hedgeable) instead of pinning a dispatch
    /// thread for ten minutes.
    pub fn connect_with(addr: &str, read_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Client { stream })
    }

    /// Sends one request and reads the full response. `target` includes
    /// the query string. Returns an error if the server closed early.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: csd-serve\r\n");
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Convenience: `GET`.
    pub fn get(&mut self, target: &str) -> io::Result<ClientResponse> {
        self.request("GET", target, b"")
    }

    /// Convenience: `POST` with a JSON body.
    pub fn post_json(&mut self, target: &str, json: &str) -> io::Result<ClientResponse> {
        self.request("POST", target, json.as_bytes())
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut buf = Vec::new();
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before response head",
                    ))
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 response head"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();

        let mut body = buf.split_off(head_end + 4);
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        match content_length {
            Some(len) => {
                while body.len() < len {
                    let mut chunk = vec![0u8; len - body.len()];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "connection closed mid-body",
                            ))
                        }
                        Ok(n) => body.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                body.truncate(len);
            }
            None => {
                // Delimited by connection close (the NDJSON stream).
                let mut rest = Vec::new();
                self.stream.read_to_end(&mut rest)?;
                body.extend_from_slice(&rest);
            }
        }
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// A deterministic exponential-backoff schedule with seeded jitter.
///
/// Attempt `k` draws a delay uniformly from the upper half of
/// `[0, min(cap, base << k)]` ("equal jitter"): enough randomness to
/// decorrelate a thundering herd, enough floor to actually back off.
/// The draw comes from a [`SplitMix64`] seeded at construction, so the
/// whole schedule is a pure function of `(base, cap, seed)` — the
/// cluster's retry behavior is replayable from its seed.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// A schedule starting at `base` and saturating at `cap`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            attempt: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The delay for the next attempt (and advances the schedule).
    pub fn next_delay(&mut self) -> Duration {
        let ceil = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let half = ceil.as_millis().min(u128::from(u64::MAX)) as u64 / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.rng.range_u64(0, half)
        };
        Duration::from_millis(half + jitter)
    }

    /// Resets the exponential ramp after a success (the jitter stream
    /// keeps advancing — resets do not replay old delays).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Recovery counters a [`RetryClient`] accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Successful TCP connects (the first one included).
    pub connects: u64,
    /// Connects after the first — each one replaced a dead connection.
    pub reconnects: u64,
    /// Requests re-sent after a `503` admission rejection.
    pub retries_503: u64,
    /// Requests re-sent after a transport error (reset, timeout, EOF).
    pub transport_retries: u64,
}

/// A [`Client`] wrapper that owns reconnection and retry policy: on a
/// transport error it drops the connection, backs off, reconnects, and
/// re-sends; on `503` it honors the server's `Retry-After` hint (capped
/// by the backoff ceiling, so a saturated test daemon cannot stall the
/// caller for whole seconds). `loadgen` and the `csd-cluster`
/// dispatcher share this one implementation.
pub struct RetryClient {
    addr: String,
    read_timeout: Duration,
    client: Option<Client>,
    backoff: Backoff,
    stats: RetryStats,
}

impl RetryClient {
    /// A retrying client for `addr`; `seed` drives the jitter schedule.
    pub fn new(addr: &str, seed: u64) -> RetryClient {
        RetryClient {
            addr: addr.to_string(),
            read_timeout: Duration::from_secs(600),
            client: None,
            backoff: Backoff::new(Duration::from_millis(10), Duration::from_millis(500), seed),
            stats: RetryStats::default(),
        }
    }

    /// Overrides the per-request read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> RetryClient {
        self.read_timeout = read_timeout;
        self
    }

    /// Overrides the backoff schedule.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Backoff) -> RetryClient {
        self.backoff = backoff;
        self
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Drops the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.client = None;
    }

    /// Sends one request, reconnecting and retrying for up to
    /// `max_attempts` tries. Returns the first non-`503` response; if
    /// the budget runs out while the server still answers `503`, that
    /// final `503` is returned (callers treat any non-200 as failure).
    /// Transport errors past the budget surface as the last `io::Error`.
    pub fn request_with_retry(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
        max_attempts: u32,
    ) -> io::Result<ClientResponse> {
        let mut last_err: Option<io::Error> = None;
        let mut last_503: Option<ClientResponse> = None;
        for attempt in 0..max_attempts.max(1) {
            let client = match self.client.as_mut() {
                Some(c) => c,
                None => match Client::connect_with(&self.addr, self.read_timeout) {
                    Ok(c) => {
                        self.stats.connects += 1;
                        if self.stats.connects > 1 {
                            self.stats.reconnects += 1;
                        }
                        self.client.insert(c)
                    }
                    Err(e) => {
                        last_err = Some(e);
                        std::thread::sleep(self.backoff.next_delay());
                        continue;
                    }
                },
            };
            match client.request(method, target, body) {
                Ok(resp) if resp.status == 503 => {
                    self.stats.retries_503 += 1;
                    let delay = self.backoff.next_delay().max(retry_after(&resp, 1));
                    last_503 = Some(resp);
                    std::thread::sleep(delay);
                }
                Ok(resp) => {
                    self.backoff.reset();
                    return Ok(resp);
                }
                Err(e) => {
                    // The connection is in an unknown state (a timed-out
                    // response may still arrive) — never reuse it.
                    self.client = None;
                    last_err = Some(e);
                    if attempt + 1 < max_attempts {
                        self.stats.transport_retries += 1;
                        std::thread::sleep(self.backoff.next_delay());
                    }
                }
            }
        }
        match last_503 {
            Some(resp) => Ok(resp),
            None => Err(last_err
                .unwrap_or_else(|| io::Error::other("retry budget exhausted with no attempt"))),
        }
    }

    /// Convenience: `GET` with retries.
    pub fn get(&mut self, target: &str, max_attempts: u32) -> io::Result<ClientResponse> {
        self.request_with_retry("GET", target, b"", max_attempts)
    }

    /// Convenience: `POST` a JSON body with retries.
    pub fn post_json(
        &mut self,
        target: &str,
        json: &str,
        max_attempts: u32,
    ) -> io::Result<ClientResponse> {
        self.request_with_retry("POST", target, json.as_bytes(), max_attempts)
    }
}

/// The server's `Retry-After` hint in seconds, capped so a polite hint
/// cannot stall a fast retry loop; `default_secs` when absent/garbled.
fn retry_after(resp: &ClientResponse, default_secs: u64) -> Duration {
    let secs = resp
        .header("retry-after")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_secs);
    Duration::from_millis((secs.saturating_mul(1000)).min(500))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(schedule(42), schedule(42), "same seed, same schedule");
        assert_ne!(schedule(42), schedule(43), "different seed, new jitter");
    }

    #[test]
    fn backoff_ramps_exponentially_and_saturates() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80), 7);
        let delays: Vec<Duration> = (0..10).map(|_| b.next_delay()).collect();
        // Attempt k draws from [ceil/2, ceil] with ceil = min(80, 10<<k).
        for (k, d) in delays.iter().enumerate() {
            let ceil = Duration::from_millis((10u64 << k.min(16)).min(80));
            assert!(*d >= ceil / 2, "attempt {k}: {d:?} below floor");
            assert!(*d <= ceil, "attempt {k}: {d:?} above ceiling");
        }
        // Once saturated, every delay is within the cap band.
        assert!(delays[9] >= Duration::from_millis(40));
        assert!(delays[9] <= Duration::from_millis(80));
    }

    #[test]
    fn backoff_reset_restarts_the_ramp() {
        let mut b = Backoff::new(Duration::from_millis(16), Duration::from_millis(1024), 1);
        for _ in 0..5 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay() <= Duration::from_millis(16));
    }

    #[test]
    fn retry_after_parses_and_caps() {
        let resp = |headers: Vec<(String, String)>| ClientResponse {
            status: 503,
            headers,
            body: Vec::new(),
        };
        let with = resp(vec![("retry-after".to_string(), "1".to_string())]);
        assert_eq!(retry_after(&with, 0), Duration::from_millis(500));
        let without = resp(Vec::new());
        assert_eq!(retry_after(&without, 0), Duration::ZERO);
        let garbled = resp(vec![("retry-after".to_string(), "soon".to_string())]);
        assert_eq!(retry_after(&garbled, 2), Duration::from_millis(500));
    }

    #[test]
    fn retry_client_surfaces_connect_failure() {
        // Nothing listens on this port (reserved, unroutable in tests);
        // the client must give up with the connect error, not hang.
        let mut c = RetryClient::new("127.0.0.1:1", 3);
        let err = c.request_with_retry("GET", "/healthz", b"", 2);
        assert!(err.is_err());
        assert_eq!(c.stats().connects, 0);
    }
}
