//! Poison-recovering lock helpers.
//!
//! A panicking experiment job is caught by the worker's `catch_unwind`,
//! but if the panic unwound through a critical section the `Mutex` is
//! left *poisoned* and every later `lock().unwrap()` turns one bad job
//! into a permanently broken daemon. All shared state in this crate is
//! plain data (counters, queues, LRU vectors) whose invariants hold at
//! every await-free statement boundary, so recovering the guard is
//! always safe — the daemon keeps serving and the recovery is counted
//! so `/metrics` makes the event visible instead of silent.
//!
//! `clippy::unwrap_used` is denied crate-wide; these helpers are the
//! only sanctioned way to take a lock in `csd-serve`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Times a poisoned lock (or condvar wait) was recovered, process-wide.
/// A global rather than a `Metrics` field so the lock helpers stay
/// dependency-free (`Metrics` itself holds locks).
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of poisoned-lock recoveries (for `/metrics`).
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

/// Locks `m`, recovering (and counting) a poisoned guard instead of
/// propagating the panic of whichever thread died holding it.
pub fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// Waits on `cv`, recovering (and counting) a poisoned guard the same
/// way [`relock`] does.
pub fn rewait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|poisoned| {
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn relock_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u64));
        let before = poison_recoveries();
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("die holding the lock");
        })
        .join();
        assert!(m.is_poisoned(), "panic while held must poison");
        assert_eq!(*relock(&m), 7, "data survives the recovery");
        assert!(poison_recoveries() > before, "recovery must be counted");
        // A recovered lock keeps working for every later taker.
        *relock(&m) = 8;
        assert_eq!(*relock(&m), 8);
    }

    #[test]
    fn rewait_survives_concurrent_poisoning() {
        use std::sync::Condvar;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut ready = relock(m);
                while !*ready {
                    ready = rewait(cv, ready);
                }
            })
        };
        let poisoner = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, _) = &*pair;
                let mut g = m.lock().unwrap();
                *g = true;
                panic!("poison while flag is set");
            })
        };
        let _ = poisoner.join();
        pair.1.notify_all();
        waiter.join().expect("waiter must survive the poisoning");
    }
}
