//! A minimal, dependency-free HTTP/1.1 implementation.
//!
//! Only what the daemon and `loadgen` need: request parsing with
//! `Content-Length` bodies, percent-decoded query strings, keep-alive,
//! and deterministic response serialization. Parsing is *incremental* —
//! [`RequestReader`] accumulates bytes across `WouldBlock`/timeout reads
//! so a connection thread can poll its socket with a read timeout and
//! still notice a shutdown flag between requests without corrupting a
//! half-received request.

use csd_telemetry::Json;
use std::io::{self, Read, Write};

/// Upper bound on header bytes (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on body bytes (experiment requests are small JSON).
pub const MAX_BODY: usize = 1024 * 1024;
/// Upper bound on the number of header lines in one request.
pub const MAX_HEADERS: usize = 100;
/// Upper bound on one header line (name + value).
pub const MAX_HEADER_LINE: usize = 8 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Decoded path without the query string, e.g. `/v1/experiments`.
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed (the server answers 400/413 and
/// closes the connection).
#[derive(Debug)]
pub enum ParseFailure {
    /// Malformed request line, header, or body framing.
    Malformed(String),
    /// Head or body larger than the fixed limits.
    TooLarge,
}

/// Outcome of one [`RequestReader::next_request`] poll.
#[derive(Debug)]
pub enum Poll {
    /// A complete request arrived.
    Ready(Box<Request>),
    /// No complete request yet; the read timed out mid-wait. Callers
    /// check their shutdown flag and poll again.
    Pending,
    /// Clean end of stream (peer closed between requests).
    Eof,
    /// The peer sent garbage or exceeded limits.
    Bad(ParseFailure),
}

/// Incremental request reader over a byte stream.
pub struct RequestReader<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read> RequestReader<S> {
    /// Wraps a stream (typically a `TcpStream` with a read timeout).
    pub fn new(stream: S) -> RequestReader<S> {
        RequestReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Polls for the next complete request, accumulating partial input
    /// across timeouts. I/O errors other than
    /// `WouldBlock`/`TimedOut`/`Interrupted` propagate.
    pub fn next_request(&mut self) -> io::Result<Poll> {
        loop {
            if let Some(result) = self.try_parse()? {
                return Ok(result);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Ok(if self.buf.is_empty() {
                        Poll::Eof
                    } else {
                        Poll::Bad(ParseFailure::Malformed("truncated request".into()))
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Poll::Pending);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Attempts to parse one request from the buffer; `Ok(None)` means
    /// "need more bytes".
    fn try_parse(&mut self) -> io::Result<Option<Poll>> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD {
                return Ok(Some(Poll::Bad(ParseFailure::TooLarge)));
            }
            return Ok(None);
        };
        if head_end > MAX_HEAD {
            // The terminator can land past the cap when a single read
            // delivers more than MAX_HEAD bytes at once.
            return Ok(Some(Poll::Bad(ParseFailure::TooLarge)));
        }
        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(h) => h,
            Err(_) => {
                return Ok(Some(Poll::Bad(ParseFailure::Malformed(
                    "non-utf8 header".into(),
                ))))
            }
        };
        let req = match parse_head(head) {
            Ok(r) => r,
            Err(f) => return Ok(Some(Poll::Bad(f))),
        };
        let body_len = match req.header("content-length") {
            None => 0,
            Some(v) => match v.trim().parse::<usize>() {
                Ok(n) if n <= MAX_BODY => n,
                Ok(_) => return Ok(Some(Poll::Bad(ParseFailure::TooLarge))),
                Err(_) => {
                    return Ok(Some(Poll::Bad(ParseFailure::Malformed(
                        "bad content-length".into(),
                    ))))
                }
            },
        };
        let total = head_end + 4 + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut req = req;
        req.body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Poll::Ready(Box::new(req))))
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &str) -> Result<Request, ParseFailure> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseFailure::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseFailure::Malformed("bad request line".into()));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ParseFailure::Malformed("bad request line".into()));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| ParseFailure::Malformed("bad path encoding".into()))?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let (Some(k), Some(v)) = (percent_decode(k), percent_decode(v)) else {
                return Err(ParseFailure::Malformed("bad query encoding".into()));
            };
            query.push((k, v));
        }
    }
    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(ParseFailure::TooLarge);
        }
        if line.len() > MAX_HEADER_LINE {
            return Err(ParseFailure::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseFailure::Malformed(format!("bad header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    })
}

/// Decodes `%XX` escapes and `+`-as-space; `None` on malformed escapes
/// or non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let d = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                out.push((d(hex[0])? << 4) | d(hex[1])?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Percent-encodes a string for use in a query value (RFC 3986
/// unreserved characters pass through).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Extra headers beyond the defaults.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with `Content-Type: application/json`.
    pub fn json(status: u16, doc: &Json) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: doc.pretty().into_bytes(),
        }
    }

    /// Body bytes that are already serialized JSON.
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body,
        }
    }

    /// A JSON error body `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj([("error", Json::from(message))]))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes head + body, appending `Connection: close` when
    /// `close` is set (otherwise keep-alive is implied by HTTP/1.1).
    pub fn write_to(&self, out: &mut impl Write, close: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len()
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        if close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Reason phrase for the handful of status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &[u8]) -> Vec<Request> {
        let mut r = RequestReader::new(input);
        let mut out = Vec::new();
        loop {
            match r.next_request().unwrap() {
                Poll::Ready(req) => out.push(*req),
                Poll::Eof => return out,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn parses_request_with_body_and_query() {
        let input = b"POST /v1/experiments?mode=warm&label=a%2Fb HTTP/1.1\r\n\
                      Host: x\r\nContent-Length: 4\r\n\r\nabcd";
        let reqs = parse_all(input);
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/experiments");
        assert_eq!(r.query_param("mode"), Some("warm"));
        assert_eq!(r.query_param("label"), Some("a/b"));
        assert_eq!(r.body, b"abcd");
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_pipelined_keep_alive_requests() {
        let input = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let reqs = parse_all(input);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].path, "/a");
        assert!(reqs[1].wants_close());
    }

    /// A reader that yields its script one chunk per call, interleaving
    /// `WouldBlock` to model read timeouts mid-request.
    struct Chunked {
        chunks: Vec<Option<Vec<u8>>>,
        i: usize,
    }
    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.i >= self.chunks.len() {
                return Ok(0);
            }
            let c = self.chunks[self.i].take();
            self.i += 1;
            match c {
                Some(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout")),
            }
        }
    }

    #[test]
    fn partial_reads_across_timeouts_reassemble() {
        let input: &[u8] = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
        let mid = 20;
        let mut r = RequestReader::new(Chunked {
            chunks: vec![
                Some(input[..mid].to_vec()),
                None, // timeout mid-request
                Some(input[mid..].to_vec()),
            ],
            i: 0,
        });
        assert!(matches!(r.next_request().unwrap(), Poll::Pending));
        match r.next_request().unwrap() {
            Poll::Ready(req) => assert_eq!(req.body, b"xyz"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(r.next_request().unwrap(), Poll::Eof));
    }

    #[test]
    fn rejects_malformed_and_oversized_input() {
        let mut r = RequestReader::new(&b"NOT-HTTP\r\n\r\n"[..]);
        assert!(matches!(r.next_request().unwrap(), Poll::Bad(_)));

        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut r = RequestReader::new(huge.as_bytes());
        assert!(matches!(
            r.next_request().unwrap(),
            Poll::Bad(ParseFailure::TooLarge)
        ));

        let mut r = RequestReader::new(&b"GET /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc"[..]);
        assert!(matches!(r.next_request().unwrap(), Poll::Bad(_)));
    }

    #[test]
    fn rejects_oversized_header_blocks_and_header_lines() {
        // One header line bigger than the per-line cap.
        let mut giant = String::from("GET /x HTTP/1.1\r\nX-Big: ");
        giant.push_str(&"a".repeat(MAX_HEADER_LINE + 1));
        giant.push_str("\r\n\r\n");
        let mut r = RequestReader::new(giant.as_bytes());
        assert!(matches!(
            r.next_request().unwrap(),
            Poll::Bad(ParseFailure::TooLarge)
        ));

        // A head that never terminates must trip the MAX_HEAD cap, not
        // accumulate forever.
        let endless = format!("GET /x HTTP/1.1\r\n{}", "X: y\r\n".repeat(4000));
        let mut r = RequestReader::new(endless.as_bytes());
        assert!(matches!(
            r.next_request().unwrap(),
            Poll::Bad(ParseFailure::TooLarge)
        ));

        // A terminated head larger than MAX_HEAD delivered in one read
        // is also refused (the terminator lands past the cap).
        let mut big = String::from("GET /x HTTP/1.1\r\n");
        big.push_str(&"X: yyyyyyyyyyyyyyyy\r\n".repeat(1000));
        big.push_str("\r\n");
        assert!(big.len() > MAX_HEAD);
        let mut r = RequestReader::new(big.as_bytes());
        assert!(matches!(
            r.next_request().unwrap(),
            Poll::Bad(ParseFailure::TooLarge)
        ));
    }

    #[test]
    fn rejects_too_many_headers() {
        let mut req = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            req.push_str(&format!("H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        assert!(req.len() <= MAX_HEAD, "count cap must fire, not size cap");
        let mut r = RequestReader::new(req.as_bytes());
        assert!(matches!(
            r.next_request().unwrap(),
            Poll::Bad(ParseFailure::TooLarge)
        ));

        // Exactly at the cap still parses.
        let mut req = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            req.push_str(&format!("H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        let mut r = RequestReader::new(req.as_bytes());
        match r.next_request().unwrap() {
            Poll::Ready(parsed) => assert_eq!(parsed.headers.len(), MAX_HEADERS),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn body_without_content_length_is_not_silently_swallowed() {
        // Without Content-Length the parser must treat the trailing
        // bytes as the head of a next (garbage) request and answer Bad
        // — never hang waiting, never panic, never hand the bytes to a
        // handler as a body.
        let input = b"POST /x HTTP/1.1\r\nHost: a\r\n\r\n{\"task\": \"t\"}";
        let mut r = RequestReader::new(&input[..]);
        match r.next_request().unwrap() {
            Poll::Ready(req) => assert!(req.body.is_empty(), "no C-L means no body"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            matches!(r.next_request().unwrap(), Poll::Bad(_)),
            "the orphaned body bytes are a malformed next request"
        );
    }

    #[test]
    fn partial_reads_reassemble_at_every_byte_boundary() {
        // Fuzz-style seeded sweep: one pipelined exchange (request with
        // body + request without) split at *every* byte boundary with a
        // timeout injected between the halves; the reader must yield the
        // identical parse regardless of the split point.
        let input: &[u8] = b"POST /v1/experiments?x=1 HTTP/1.1\r\nHost: h\r\n\
                             Content-Length: 5\r\n\r\nhello\
                             GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        for split in 0..=input.len() {
            // An empty chunk would read as EOF; only emit non-empty
            // halves around the injected timeout.
            let mut chunks = Vec::new();
            if split > 0 {
                chunks.push(Some(input[..split].to_vec()));
            }
            chunks.push(None); // read timeout between the halves
            if split < input.len() {
                chunks.push(Some(input[split..].to_vec()));
            }
            let mut r = RequestReader::new(Chunked { chunks, i: 0 });
            let mut requests = Vec::new();
            let mut pendings = 0;
            loop {
                match r.next_request().unwrap() {
                    Poll::Ready(req) => requests.push(*req),
                    Poll::Pending => {
                        pendings += 1;
                        assert!(pendings < 4, "reader must not spin at split {split}");
                    }
                    Poll::Eof => break,
                    other => panic!("split {split}: unexpected {other:?}"),
                }
            }
            assert_eq!(requests.len(), 2, "split {split}");
            assert_eq!(requests[0].body, b"hello", "split {split}");
            assert_eq!(requests[0].query_param("x"), Some("1"));
            assert_eq!(requests[1].path, "/metrics", "split {split}");
            assert!(requests[1].wants_close());
        }
    }

    #[test]
    fn seeded_garbage_never_panics_or_hangs() {
        // Deterministic garbage loop: random bytes (with enough CR/LF
        // sprinkled in to reach the parser's deeper paths) must resolve
        // to Ready/Bad/Eof in bounded steps — never a panic, never an
        // unbounded Pending loop.
        let mut state = 0x6A09_E667_F3BC_C908u64;
        let mut next = move || {
            // SplitMix64 step, inlined to keep the test dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _case in 0..200 {
            let len = (next() % 300) as usize;
            let mut bytes = Vec::with_capacity(len + 4);
            for _ in 0..len {
                let b = match next() % 8 {
                    0 => b'\r',
                    1 => b'\n',
                    2 => b' ',
                    3 => b':',
                    _ => (next() % 256) as u8,
                };
                bytes.push(b);
            }
            // Half the cases get a valid terminator so parse_head runs.
            if next() % 2 == 0 {
                bytes.extend_from_slice(b"\r\n\r\n");
            }
            let mut r = RequestReader::new(&bytes[..]);
            for _step in 0..64 {
                match r.next_request().unwrap() {
                    Poll::Bad(_) | Poll::Eof => break,
                    Poll::Ready(_) | Poll::Pending => {}
                }
            }
        }
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, &Json::obj([("ok", Json::from(true))]))
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
    }

    #[test]
    fn percent_coding_round_trips() {
        let s = "a/b c?&=%~x";
        assert_eq!(percent_decode(&percent_encode(s)).as_deref(), Some(s));
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("a+b"), Some("a b".into()));
    }
}
