//! Per-request service metrics behind `GET /metrics`.
//!
//! Counters are lock-free atomics; the latency distributions reuse
//! [`csd_telemetry::Histogram`] (log2 buckets, mergeable) behind short
//! poison-recovering critical sections. `loadgen` renders its
//! client-side percentiles from the same histogram type, so server- and
//! client-observed latency are directly comparable.
//!
//! Error accounting is two-layered: the legacy `client_errors` /
//! `server_errors` split (4xx vs 5xx) stays for dashboards that already
//! read it, and the `errors` object breaks failures down by
//! [`ErrorClass`] so a chaos run can assert every injected fault landed
//! in its expected bucket.

use crate::error::ErrorClass;
use crate::lock::{poison_recoveries, relock};
use csd_telemetry::{Histogram, Json, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters and latency distributions for one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests parsed (any route).
    pub requests: AtomicU64,
    /// Experiment jobs completed by workers.
    pub experiments: AtomicU64,
    /// Experiment jobs served from a warmed checkpoint.
    pub warm_hits: AtomicU64,
    /// Experiment jobs that warmed a fresh session.
    pub cold_runs: AtomicU64,
    /// Plan legs measured across all experiment jobs (one experiment
    /// may fork its checkpoint into many legs).
    pub plan_legs: AtomicU64,
    /// Requests rejected with `503` (queue full or draining).
    pub rejected: AtomicU64,
    /// Requests answered with a `4xx`.
    pub client_errors: AtomicU64,
    /// Requests answered with a `5xx` other than admission rejects.
    pub server_errors: AtomicU64,
    /// `/v1/stream` sessions served.
    pub streams: AtomicU64,
    /// Admission-class failures (routing, queue capacity, draining).
    pub errors_admission: AtomicU64,
    /// Parse-class failures (malformed framing or body).
    pub errors_parse: AtomicU64,
    /// Run-class failures (job errors and panics).
    pub errors_run: AtomicU64,
    /// Io-class failures (dead or stalled connections).
    pub errors_io: AtomicU64,
    /// Jobs that panicked inside a worker (caught, answered 500).
    pub worker_panics: AtomicU64,
    /// Worker threads that died outside job execution (join failed).
    pub workers_lost: AtomicU64,
    /// Injected-fault jobs executed (fault mode only).
    pub injected_faults: AtomicU64,
    /// Connections closed for exceeding the per-connection deadline.
    pub deadline_closes: AtomicU64,
    queue_wait_us: Mutex<Histogram>,
    run_us: Mutex<Histogram>,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Convenience: relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one classified failure (and keeps the legacy 4xx/5xx
    /// split coherent with the per-class counters).
    pub fn record_error(&self, class: ErrorClass, status: u16) {
        let bucket = match class {
            ErrorClass::Admission => &self.errors_admission,
            ErrorClass::Parse => &self.errors_parse,
            ErrorClass::Run => &self.errors_run,
            ErrorClass::Io => &self.errors_io,
        };
        Metrics::bump(bucket);
        if status == 503 {
            Metrics::bump(&self.rejected);
        } else if (400..500).contains(&status) {
            Metrics::bump(&self.client_errors);
        } else if status >= 500 {
            Metrics::bump(&self.server_errors);
        }
    }

    /// Records how long a job sat in the queue before a worker took it.
    pub fn record_queue_wait_us(&self, us: u64) {
        relock(&self.queue_wait_us).record(us);
    }

    /// Records how long a worker spent executing a job.
    pub fn record_run_us(&self, us: u64) {
        relock(&self.run_us).record(us);
    }

    /// Snapshot of both histograms (queue wait, run time).
    pub fn latency_snapshot(&self) -> (Histogram, Histogram) {
        (
            relock(&self.queue_wait_us).clone(),
            relock(&self.run_us).clone(),
        )
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        let (queue_wait, run) = self.latency_snapshot();
        let c = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        Json::obj([
            ("requests", c(&self.requests)),
            ("experiments", c(&self.experiments)),
            ("warm_hits", c(&self.warm_hits)),
            ("cold_runs", c(&self.cold_runs)),
            ("plan_legs", c(&self.plan_legs)),
            ("rejected", c(&self.rejected)),
            ("client_errors", c(&self.client_errors)),
            ("server_errors", c(&self.server_errors)),
            ("streams", c(&self.streams)),
            (
                "errors",
                Json::obj([
                    ("admission", c(&self.errors_admission)),
                    ("parse", c(&self.errors_parse)),
                    ("run", c(&self.errors_run)),
                    ("io", c(&self.errors_io)),
                ]),
            ),
            ("worker_panics", c(&self.worker_panics)),
            ("workers_lost", c(&self.workers_lost)),
            ("injected_faults", c(&self.injected_faults)),
            ("deadline_closes", c(&self.deadline_closes)),
            ("lock_poison_recoveries", Json::from(poison_recoveries())),
            ("queue_wait_us", queue_wait.to_json()),
            ("run_us", run.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_report_counters_and_histograms() {
        let m = Metrics::new();
        Metrics::bump(&m.requests);
        Metrics::bump(&m.requests);
        Metrics::bump(&m.warm_hits);
        m.record_queue_wait_us(10);
        m.record_run_us(1000);
        m.record_run_us(3000);
        let j = m.to_json();
        assert_eq!(j.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("warm_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(
            j.get("run_us")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let (qw, run) = m.latency_snapshot();
        assert_eq!(qw.count(), 1);
        assert_eq!(run.max(), 3000);
    }

    #[test]
    fn classified_errors_feed_both_layers() {
        let m = Metrics::new();
        m.record_error(ErrorClass::Parse, 400);
        m.record_error(ErrorClass::Admission, 503);
        m.record_error(ErrorClass::Run, 500);
        m.record_error(ErrorClass::Io, 500);
        let j = m.to_json();
        let errors = j.get("errors").expect("errors object");
        assert_eq!(errors.get("parse").and_then(Json::as_u64), Some(1));
        assert_eq!(errors.get("admission").and_then(Json::as_u64), Some(1));
        assert_eq!(errors.get("run").and_then(Json::as_u64), Some(1));
        assert_eq!(errors.get("io").and_then(Json::as_u64), Some(1));
        // Legacy split: the 503 lands in `rejected`, not client_errors.
        assert_eq!(j.get("rejected").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("client_errors").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("server_errors").and_then(Json::as_u64), Some(2));
    }
}
