//! Per-request service metrics behind `GET /metrics`.
//!
//! Counters are lock-free atomics; the latency distributions reuse
//! [`csd_telemetry::Histogram`] (log2 buckets, mergeable) behind short
//! critical sections. `loadgen` renders its client-side percentiles from
//! the same histogram type, so server- and client-observed latency are
//! directly comparable.

use csd_telemetry::{Histogram, Json, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters and latency distributions for one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests parsed (any route).
    pub requests: AtomicU64,
    /// Experiment jobs completed by workers.
    pub experiments: AtomicU64,
    /// Experiment jobs served from a warmed checkpoint.
    pub warm_hits: AtomicU64,
    /// Experiment jobs that warmed a fresh session.
    pub cold_runs: AtomicU64,
    /// Requests rejected with `503` (queue full or draining).
    pub rejected: AtomicU64,
    /// Requests answered with a `4xx`.
    pub client_errors: AtomicU64,
    /// Requests answered with a `5xx` other than admission rejects.
    pub server_errors: AtomicU64,
    /// `/v1/stream` sessions served.
    pub streams: AtomicU64,
    queue_wait_us: Mutex<Histogram>,
    run_us: Mutex<Histogram>,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Convenience: relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records how long a job sat in the queue before a worker took it.
    pub fn record_queue_wait_us(&self, us: u64) {
        self.queue_wait_us.lock().unwrap().record(us);
    }

    /// Records how long a worker spent executing a job.
    pub fn record_run_us(&self, us: u64) {
        self.run_us.lock().unwrap().record(us);
    }

    /// Snapshot of both histograms (queue wait, run time).
    pub fn latency_snapshot(&self) -> (Histogram, Histogram) {
        (
            self.queue_wait_us.lock().unwrap().clone(),
            self.run_us.lock().unwrap().clone(),
        )
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        let (queue_wait, run) = self.latency_snapshot();
        let c = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        Json::obj([
            ("requests", c(&self.requests)),
            ("experiments", c(&self.experiments)),
            ("warm_hits", c(&self.warm_hits)),
            ("cold_runs", c(&self.cold_runs)),
            ("rejected", c(&self.rejected)),
            ("client_errors", c(&self.client_errors)),
            ("server_errors", c(&self.server_errors)),
            ("streams", c(&self.streams)),
            ("queue_wait_us", queue_wait.to_json()),
            ("run_us", run.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_report_counters_and_histograms() {
        let m = Metrics::new();
        Metrics::bump(&m.requests);
        Metrics::bump(&m.requests);
        Metrics::bump(&m.warm_hits);
        m.record_queue_wait_us(10);
        m.record_run_us(1000);
        m.record_run_us(3000);
        let j = m.to_json();
        assert_eq!(j.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("warm_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(
            j.get("run_us")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let (qw, run) = m.latency_snapshot();
        assert_eq!(qw.count(), 1);
        assert_eq!(run.max(), 3000);
    }
}
