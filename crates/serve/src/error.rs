//! The `csd-serve` error taxonomy.
//!
//! Every failed request resolves to one [`ServeError`] carrying a
//! class, an HTTP status, and a message. The class answers the
//! operational question "whose fault, and where?":
//!
//! | class       | meaning                                   | typical status |
//! |-------------|-------------------------------------------|----------------|
//! | `admission` | refused before any work ran (full queue,  | 404 / 405 / 503 |
//! |             | draining, unknown route, disabled fault)  |                |
//! | `parse`     | the request bytes or body were malformed  | 400 / 413      |
//! | `run`       | the job itself failed or panicked         | 500            |
//! | `io`        | the connection died or stalled mid-flight | (often unanswerable) |
//!
//! `/metrics` exports one counter per class, so a chaos run can assert
//! that every injected fault landed in the expected bucket.

use crate::http::Response;
use csd_telemetry::Json;

/// Which layer a request failed in (see module docs for the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Refused at admission: routing, queue capacity, draining.
    Admission,
    /// Malformed request framing or body.
    Parse,
    /// The admitted job failed while executing (including panics).
    Run,
    /// Transport-level failure (timeout, reset, stalled peer).
    Io,
}

impl ErrorClass {
    /// Stable lowercase name used in response bodies and `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::Admission => "admission",
            ErrorClass::Parse => "parse",
            ErrorClass::Run => "run",
            ErrorClass::Io => "io",
        }
    }
}

/// One classified request failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Which layer failed.
    pub class: ErrorClass,
    /// HTTP status the client sees.
    pub status: u16,
    /// Human-readable cause, returned in the JSON body.
    pub message: String,
}

impl ServeError {
    /// An admission refusal (default status 503).
    pub fn admission(status: u16, message: impl Into<String>) -> ServeError {
        ServeError {
            class: ErrorClass::Admission,
            status,
            message: message.into(),
        }
    }

    /// A malformed request (status 400 unless overridden).
    pub fn parse(message: impl Into<String>) -> ServeError {
        ServeError {
            class: ErrorClass::Parse,
            status: 400,
            message: message.into(),
        }
    }

    /// A job-execution failure (status 500).
    pub fn run(message: impl Into<String>) -> ServeError {
        ServeError {
            class: ErrorClass::Run,
            status: 500,
            message: message.into(),
        }
    }

    /// A transport failure (rarely answerable; status 500 if it is).
    pub fn io(message: impl Into<String>) -> ServeError {
        ServeError {
            class: ErrorClass::Io,
            status: 500,
            message: message.into(),
        }
    }

    /// The structured error body: `{"error": ..., "class": ...}`.
    pub fn body(&self) -> Json {
        Json::obj([
            ("error", Json::from(self.message.as_str())),
            ("class", Json::from(self.class.name())),
        ])
    }

    /// Renders the error as an HTTP response.
    pub fn response(&self) -> Response {
        Response::json(self.status, &self.body())
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: {}",
            self.status,
            self.class.name(),
            self.message
        )
    }
}

/// Extracts a readable message from a caught panic payload (`&str` and
/// `String` payloads cover `panic!`/`assert!`; anything else gets a
/// placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_carry_class_and_message() {
        let e = ServeError::parse("bad body");
        assert_eq!(e.status, 400);
        let body = e.body();
        assert_eq!(body.get("class").and_then(Json::as_str), Some("parse"));
        assert_eq!(body.get("error").and_then(Json::as_str), Some("bad body"));
        assert_eq!(ServeError::run("x").class.name(), "run");
        assert_eq!(ServeError::io("x").class.name(), "io");
        assert_eq!(ServeError::admission(503, "full").status, 503);
    }

    #[test]
    fn panic_messages_unwrap_common_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "boom 7");
        let caught = std::panic::catch_unwind(|| panic!("literal")).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "literal");
        let caught =
            std::panic::catch_unwind(|| std::panic::panic_any(42u32)).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }
}
