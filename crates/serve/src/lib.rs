//! # csd-serve — simulation as a service
//!
//! A dependency-free HTTP/1.1 daemon that serves the repository's
//! experiment grid over the network, plus the `loadgen` client that
//! exercises it. Three ideas:
//!
//! - **Byte determinism survives the network.** A task served from
//!   `POST /v1/experiments` is the exact document `suite --filter`
//!   writes — CI `cmp`s the two.
//! - **Sessions amortize warm-up.** The expensive prefix of a security
//!   experiment (core construction + cache warm-up) is parked as an
//!   `Arc<CoreSnapshot>` in an LRU implementing the `csd-exp`
//!   `CheckpointProvider` trait; experiment plans varying only measured
//!   knobs fork it per leg, byte-identical to a cold run.
//! - **Backpressure over buffering.** A fixed worker pool pulls from a
//!   bounded queue; when it is full the daemon answers `503` with
//!   `Retry-After` instead of hoarding work, and graceful shutdown
//!   drains what was admitted before exiting 0.
//! - **Panics are contained, not fatal.** Jobs run under
//!   `catch_unwind`, locks recover from poisoning ([`lock`]), failures
//!   carry a class ([`error`]), and a seeded fault-injection mode
//!   ([`fault`]) lets a chaos harness prove all of it.
//!
//! See `DESIGN.md` (service architecture and failure model) and the
//! README's "Serving" section for the endpoint reference.

#![warn(missing_docs)]
// The daemon must not have reachable panics on its request path: every
// `unwrap`/`expect` needs an explicit allow with a safety argument, or a
// rewrite into `ServeError`. Tests are exempt — panicking is how tests
// fail. CI runs clippy with `-D warnings`, which makes these deny.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod error;
pub mod fault;
pub mod http;
pub mod lock;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod session;

pub use client::{Backoff, Client, ClientResponse, RetryClient, RetryStats};
pub use csd_exp::{ExperimentSpec, SessionKey, Warmed};
pub use error::{ErrorClass, ServeError};
pub use fault::{FaultMode, FaultSpec};
pub use lock::{poison_recoveries, relock, rewait};
pub use metrics::Metrics;
pub use server::{install_signal_handler, Server, ServerConfig, ShutdownHandle};
pub use session::SessionCache;
