//! End-to-end tests over real sockets: boot a daemon on an ephemeral
//! port, talk HTTP to it with the `loadgen` client library, and check
//! the service contracts — byte-deterministic task documents, warm
//! forks, admission control, NDJSON streaming, graceful shutdown.

use csd_bench::suite::{run_filtered, SuiteConfig};
use csd_serve::{Client, FaultMode, Server, ServerConfig, ShutdownHandle};
use csd_telemetry::Json;
use std::time::{Duration, Instant};

/// Boots a daemon on port 0; returns its address, shutdown handle, and
/// the join handle for asserting a clean exit.
fn boot(workers: usize, queue_cap: usize) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap,
        cache_cap: 8,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn shutdown_and_join(handle: &ShutdownHandle, join: std::thread::JoinHandle<()>) {
    handle.trigger();
    join.join().expect("server exits cleanly after drain");
}

#[test]
fn served_task_bytes_match_the_cli_suite() {
    let (addr, handle, join) = boot(2, 8);
    let mut client = Client::connect(&addr).unwrap();

    let resp = client
        .post_json(
            "/v1/experiments",
            "{\"task\": \"table1\", \"profile\": \"quick\", \"seed\": 51}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    let cli = run_filtered(&SuiteConfig::quick(51, 1), "table1").pretty();
    assert_eq!(
        resp.text(),
        cli,
        "served document must be byte-identical to suite --filter"
    );

    shutdown_and_join(&handle, join);
}

#[test]
fn warm_fork_over_http_matches_cold_and_reports_header() {
    let (addr, handle, join) = boot(2, 8);
    let mut client = Client::connect(&addr).unwrap();
    let body = "{\"experiment\": {\"victim\": \"aes-enc\", \"stealth\": true, \
                 \"watchdog\": 2000, \"blocks\": 2, \"seed\": 9}}";

    let cold = client.post_json("/v1/experiments", body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("x-csd-warm"), Some("0"));

    let warm = client.post_json("/v1/experiments", body).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-csd-warm"), Some("1"), "second run must hit");
    assert_eq!(
        cold.body, warm.body,
        "warm and cold bodies must be identical"
    );

    // Metrics observed both paths, including the session-cache counters
    // and the per-leg accounting from the plan executor.
    let metrics = Json::parse(&client.get("/metrics").unwrap().text()).unwrap();
    assert_eq!(metrics.get("warm_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(metrics.get("cold_runs").and_then(Json::as_u64), Some(1));
    assert_eq!(metrics.get("plan_legs").and_then(Json::as_u64), Some(2));
    assert_eq!(metrics.get("session_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(
        metrics.get("session_misses").and_then(Json::as_u64),
        Some(1)
    );
    assert!(
        metrics
            .get("run_us")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 2
    );

    shutdown_and_join(&handle, join);
}

#[test]
fn multi_leg_plan_matches_legs_run_one_at_a_time_cold() {
    // One typed spec with four legs warms once and forks per leg; every
    // leg's document must be byte-identical to the same leg posted alone
    // with `cold: true` (fresh warm-up, no cache) — the observable proof
    // that forking a checkpoint is free of cross-leg contamination.
    let (addr, handle, join) = boot(2, 8);
    let mut client = Client::connect(&addr).unwrap();
    let legs = [
        "{\"mode\": \"base\"}",
        "{\"mode\": \"stealth\", \"watchdog\": 2000}",
        "{\"mode\": \"stealth\", \"watchdog\": 4000}",
        "{\"mode\": \"devec\", \"policy\": \"always-on\"}",
    ];
    let multi_body = format!(
        "{{\"experiment\": {{\"victim\": \"aes-enc\", \"pipeline\": \"opt\", \"seed\": 21, \
         \"blocks\": 2, \"legs\": [{}]}}}}",
        legs.join(", ")
    );
    let multi = client.post_json("/v1/experiments", &multi_body).unwrap();
    assert_eq!(multi.status, 200, "{}", multi.text());
    let multi_doc = Json::parse(&multi.text()).unwrap();
    let served_legs = match multi_doc.get("legs") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("response lacks a legs array: {other:?}"),
    };
    assert_eq!(served_legs.len(), legs.len());

    for (i, (leg, served)) in legs.iter().zip(&served_legs).enumerate() {
        let one_body = format!(
            "{{\"experiment\": {{\"victim\": \"aes-enc\", \"pipeline\": \"opt\", \"seed\": 21, \
             \"blocks\": 2, \"cold\": true, \"legs\": [{leg}]}}}}"
        );
        let one = client.post_json("/v1/experiments", &one_body).unwrap();
        assert_eq!(one.status, 200, "{}", one.text());
        assert_eq!(one.header("x-csd-warm"), Some("0"), "cold skips the cache");
        let one_doc = Json::parse(&one.text()).unwrap();
        let solo = match one_doc.get("legs") {
            Some(Json::Arr(items)) if items.len() == 1 => &items[0],
            other => panic!("single-leg response malformed: {other:?}"),
        };
        assert_eq!(
            served.pretty(),
            solo.pretty(),
            "leg {i} of the plan must be byte-identical to its solo cold run"
        );
    }

    // The whole comparison cost exactly one warm-up on the plan side.
    let metrics = Json::parse(&client.get("/metrics").unwrap().text()).unwrap();
    assert_eq!(
        metrics.get("plan_legs").and_then(Json::as_u64),
        Some(legs.len() as u64 * 2)
    );
    assert_eq!(
        metrics.get("session_misses").and_then(Json::as_u64),
        Some(5)
    );

    shutdown_and_join(&handle, join);
}

/// Polls `/metrics` until `key` reaches `want`, so saturation tests can
/// sequence on observed daemon state instead of wall-clock sleeps (which
/// flake when the whole workspace's test binaries compete for CPU).
fn wait_for_counter(addr: &str, key: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = Client::connect(addr).expect("connect for metrics poll");
        let metrics = Json::parse(&client.get("/metrics").unwrap().text()).unwrap();
        if metrics.get(key).and_then(Json::as_u64).unwrap_or(0) >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {key} >= {want}: {}",
            metrics.pretty()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn full_queue_rejects_with_503_and_retry_after() {
    // One worker, one queue slot: a stalled job plus one queued job
    // saturate the daemon; the third request must be rejected fast, not
    // hang. The stall is an injected sleep fault — it holds the worker
    // for a fixed wall-clock interval no matter how loaded the machine
    // is — and each stage is sequenced on `/metrics` counters rather
    // than local sleeps, so the ordering cannot scramble under load.
    let (addr, handle, join) = {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_cap: 1,
            cache_cap: 8,
            fault: Some(FaultMode { seed: 0x503 }),
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address").to_string();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("server run"));
        (addr, handle, join)
    };
    let slow = "{\"fault\": {\"kind\": \"sleep\", \"ms\": 2000}}";
    let queued = "{\"experiment\": {\"victim\": \"aes-enc\", \"blocks\": 2, \"seed\": 2}}";
    let rejected = "{\"experiment\": {\"victim\": \"aes-enc\", \"blocks\": 2, \"seed\": 3}}";

    std::thread::scope(|s| {
        let a = s.spawn(|| {
            Client::connect(&addr)
                .unwrap()
                .post_json("/v1/experiments", slow)
                .unwrap()
        });
        // The worker bumps `injected_faults` when it claims the sleep
        // job; from then on it is pinned for a full 2s.
        wait_for_counter(&addr, "injected_faults", 1);
        let b = s.spawn(|| {
            Client::connect(&addr)
                .unwrap()
                .post_json("/v1/experiments", queued)
                .unwrap()
        });
        // The queued job fills the single queue slot.
        wait_for_counter(&addr, "queue_depth", 1);

        let t0 = Instant::now();
        let c = Client::connect(&addr)
            .unwrap()
            .post_json("/v1/experiments", rejected)
            .unwrap();
        assert_eq!(
            c.status,
            503,
            "third request must be rejected: {}",
            c.text()
        );
        assert_eq!(c.header("retry-after"), Some("1"));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "rejection must be fast-fail, not queued-behind-work"
        );

        assert_eq!(a.join().unwrap().status, 200, "stalled job still completes");
        assert_eq!(b.join().unwrap().status, 200, "queued job still completes");
    });

    let mut client = Client::connect(&addr).unwrap();
    let metrics = Json::parse(&client.get("/metrics").unwrap().text()).unwrap();
    assert_eq!(metrics.get("rejected").and_then(Json::as_u64), Some(1));

    shutdown_and_join(&handle, join);
}

#[test]
fn stream_serves_ndjson_events_with_summary() {
    let (addr, handle, join) = boot(1, 4);
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .get("/v1/stream?victim=aes-enc&stealth=true&blocks=2&seed=5&sample=1&max=50")
        .unwrap();
    assert_eq!(resp.status, 200);
    let text = resp.text();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 2, "expected events plus a summary: {text:?}");
    for line in &lines {
        Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
    }
    let summary = Json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(summary.get("done"), Some(&Json::Bool(true)));
    assert!(summary
        .get("metrics")
        .and_then(|m| m.get("cycles"))
        .is_some());
    let events = summary.get("events").and_then(Json::as_u64).unwrap();
    assert!(events >= 1, "a stealth run must emit events");
    // Event lines precede the summary and carry an "event" tag.
    let first = Json::parse(lines[0]).unwrap();
    assert!(first.get("event").is_some());

    shutdown_and_join(&handle, join);
}

#[test]
fn routes_and_errors() {
    let (addr, handle, join) = boot(1, 4);
    let mut client = Client::connect(&addr).unwrap();

    let ok = client.get("/healthz").unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(
        Json::parse(&ok.text()).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );

    let tasks = Json::parse(&client.get("/v1/tasks?filter=wd/").unwrap().text()).unwrap();
    assert_eq!(tasks.get("count").and_then(Json::as_u64), Some(8));

    assert_eq!(client.get("/no/such").unwrap().status, 404);
    assert_eq!(client.request("PUT", "/metrics", b"").unwrap().status, 405);
    assert_eq!(
        client
            .post_json("/v1/experiments", "not json")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .post_json(
                "/v1/experiments",
                "{\"experiment\": {\"victim\": \"nope\"}}"
            )
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .post_json("/v1/experiments", "{\"task\": \"no-such-task\"}")
            .unwrap()
            .status,
        400
    );

    shutdown_and_join(&handle, join);
}

#[test]
fn shutdown_endpoint_drains_in_flight_work() {
    let (addr, handle, join) = boot(1, 4);

    // A long job is mid-flight when shutdown is requested; the daemon
    // must answer it before exiting.
    let slow = "{\"experiment\": {\"victim\": \"aes-enc\", \"blocks\": 128, \"seed\": 4}}";
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            Client::connect(&addr)
                .unwrap()
                .post_json("/v1/experiments", slow)
                .unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(300));

    let mut client = Client::connect(&addr).unwrap();
    let resp = client.post_json("/v1/shutdown", "{}").unwrap();
    assert_eq!(resp.status, 200);
    assert!(handle.is_triggered());

    let in_flight = worker.join().unwrap();
    assert_eq!(
        in_flight.status,
        200,
        "in-flight work must drain: {}",
        in_flight.text()
    );

    join.join().expect("server exits 0 after drain");
    assert!(
        std::net::TcpStream::connect(&addr).is_err()
            || Client::connect(&addr)
                .and_then(|mut c| c.get("/healthz"))
                .is_err(),
        "listener must be gone after shutdown"
    );
}
