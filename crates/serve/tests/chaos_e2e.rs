//! Chaos end-to-end: boot a fault-armed daemon on an ephemeral port and
//! batter it with every fault kind the harness knows — panicking jobs
//! (plain and lock-poisoning), worker stalls, slowloris clients, aborted
//! half-written requests, malformed frames, and queue-saturation bursts.
//!
//! The contracts under test:
//!
//! 1. the daemon never crashes — `/healthz` answers after everything;
//! 2. every connection ends in a well-formed HTTP response or a clean
//!    server-initiated close;
//! 3. `/metrics` error counters account exactly for every injected
//!    fault;
//! 4. a poisoning panic leaves no lock unusable — the next experiment
//!    is byte-identical to one served by a fresh daemon;
//! 5. `POST /v1/shutdown` still drains cleanly afterwards.

use csd_serve::{Client, FaultMode, Server, ServerConfig, ShutdownHandle};
use csd_telemetry::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Once;
use std::time::Duration;

/// Injected faults panic on purpose, hundreds of times; the default
/// panic hook would bury real test failures in backtrace spam. Silence
/// exactly the injected ones, delegate everything else.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains("injected fault") {
                default(info);
            }
        }));
    });
}

fn boot(cfg: ServerConfig) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    quiet_injected_panics();
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server drains cleanly"));
    (addr, handle, join)
}

fn armed_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 8,
        cache_cap: 8,
        conn_deadline: Duration::from_millis(400),
        write_timeout: Duration::from_secs(5),
        fault: Some(FaultMode { seed: 0xC4A05 }),
    }
}

fn shutdown_and_join(handle: &ShutdownHandle, join: std::thread::JoinHandle<()>) {
    handle.trigger();
    join.join().expect("server exits cleanly after drain");
}

fn metrics(addr: &str) -> Json {
    let mut c = Client::connect(addr).expect("connect for metrics");
    let resp = c.get("/metrics").expect("GET /metrics");
    assert_eq!(resp.status, 200);
    Json::parse(&resp.text()).expect("metrics parse")
}

fn counter(m: &Json, k: &str) -> u64 {
    m.get(k).and_then(Json::as_u64).unwrap_or(0)
}

fn error_counter(m: &Json, class: &str) -> u64 {
    m.get("errors")
        .and_then(|e| e.get(class))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

const EXPERIMENT: &str = "{\"experiment\": {\"victim\": \"aes-enc\", \"pipeline\": \"opt\", \
                          \"stealth\": true, \"watchdog\": 2000, \"blocks\": 2, \"seed\": 77}}";

#[test]
fn unarmed_daemon_refuses_fault_jobs() {
    let (addr, handle, join) = boot(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        fault: None,
        ..armed_config()
    });
    let mut c = Client::connect(&addr).unwrap();
    let resp = c
        .post_json("/v1/experiments", "{\"fault\":{\"kind\":\"panic\"}}")
        .unwrap();
    assert_eq!(resp.status, 403, "unarmed daemons must refuse fault jobs");
    let doc = Json::parse(&resp.text()).unwrap();
    assert_eq!(doc.get("class").and_then(Json::as_str), Some("admission"));
    shutdown_and_join(&handle, join);
}

#[test]
fn poisoning_panic_leaves_no_lock_unusable() {
    let (addr, handle, join) = boot(armed_config());
    let mut c = Client::connect(&addr).unwrap();

    // Warm a session, keep its bytes.
    let before = c.post_json("/v1/experiments", EXPERIMENT).unwrap();
    assert_eq!(before.status, 200);

    // Panic *while holding the session-cache lock*.
    let resp = c
        .post_json(
            "/v1/experiments",
            "{\"fault\":{\"kind\":\"panic\",\"poison\":true}}",
        )
        .unwrap();
    assert_eq!(resp.status, 500);
    let doc = Json::parse(&resp.text()).unwrap();
    assert_eq!(doc.get("class").and_then(Json::as_str), Some("run"));
    assert!(
        doc.get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("injected fault")),
        "500 body must carry the panic message, got {}",
        resp.text()
    );

    // The poisoned lock recovers: the same request is served warm, with
    // the exact bytes from before the panic.
    let after = c.post_json("/v1/experiments", EXPERIMENT).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.header("x-csd-warm"), Some("1"), "cache survived");
    assert_eq!(after.body, before.body, "bytes unchanged across poisoning");

    // And they match a daemon that never saw a panic at all.
    let (fresh_addr, fresh_handle, fresh_join) = boot(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        fault: None,
        ..armed_config()
    });
    let mut fresh = Client::connect(&fresh_addr).unwrap();
    let reference = fresh.post_json("/v1/experiments", EXPERIMENT).unwrap();
    assert_eq!(reference.status, 200);
    assert_eq!(
        after.body, reference.body,
        "post-poison response must be byte-identical to a fresh daemon's"
    );
    shutdown_and_join(&fresh_handle, fresh_join);

    let m = metrics(&addr);
    assert_eq!(counter(&m, "worker_panics"), 1, "one injected panic");
    // The warm re-run after the poisoning is the access that recovers
    // the lock; recovery is counted in the process-global gauge.
    assert!(
        counter(&m, "lock_poison_recoveries") >= 1,
        "recovering from the poisoned cache lock must be counted"
    );
    shutdown_and_join(&handle, join);
}

#[test]
fn queue_saturation_degrades_into_well_formed_503s() {
    let (addr, handle, join) = boot(ServerConfig {
        workers: 1,
        queue_cap: 2,
        ..armed_config()
    });
    // 8 concurrent stall jobs against 1 worker + 2 queue slots: at
    // least five must bounce, and every response must be well-formed.
    let statuses: Vec<u16> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    let resp = c
                        .post_json(
                            "/v1/experiments",
                            "{\"fault\":{\"kind\":\"sleep\",\"ms\":300}}",
                        )
                        .expect("burst response");
                    if resp.status == 503 {
                        assert_eq!(resp.header("retry-after"), Some("1"));
                        let doc = Json::parse(&resp.text()).expect("503 body parses");
                        assert_eq!(doc.get("class").and_then(Json::as_str), Some("admission"));
                    }
                    resp.status
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let ok = statuses.iter().filter(|s| **s == 200).count();
    let rejected = statuses.iter().filter(|s| **s == 503).count();
    assert_eq!(ok + rejected, 8, "only 200s and 503s: {statuses:?}");
    assert!(
        rejected >= 5,
        "a saturated queue must shed load: {statuses:?}"
    );

    let m = metrics(&addr);
    assert_eq!(counter(&m, "rejected"), rejected as u64);
    assert_eq!(error_counter(&m, "admission"), rejected as u64);
    shutdown_and_join(&handle, join);
}

/// The storm: hundreds of interactions across all five fault kinds, then
/// exact accounting. Fault kinds with deterministic server-side counters
/// (panic, poison, sleep, malformed, slowloris) are sent in known
/// amounts; partial writes add connection churn that must leave no
/// counter behind.
#[test]
fn chaos_storm_accounts_for_every_fault_and_drains() {
    const PANICS: u64 = 130;
    const POISONS: u64 = 40;
    const SLEEPS: u64 = 130;
    const MALFORMED: u64 = 120;
    const PARTIALS: u64 = 100;
    const SLOW: u64 = 2;
    // 522 requests total, > 500 per the harness contract.

    let (addr, handle, join) = boot(armed_config());

    // Panics, poisons, and stalls ride one keep-alive connection; every
    // answer must be well-formed with the right class.
    let mut c = Client::connect(&addr).unwrap();
    for i in 0..(PANICS + POISONS) {
        let poison = i >= PANICS;
        let body = format!("{{\"fault\":{{\"kind\":\"panic\",\"poison\":{poison}}}}}");
        let resp = c
            .post_json("/v1/experiments", &body)
            .expect("panic answered");
        assert_eq!(resp.status, 500, "panic #{i}");
        let doc = Json::parse(&resp.text()).expect("500 body parses");
        assert_eq!(doc.get("class").and_then(Json::as_str), Some("run"));
    }
    for i in 0..SLEEPS {
        let resp = c
            .post_json(
                "/v1/experiments",
                "{\"fault\":{\"kind\":\"sleep\",\"ms\":1}}",
            )
            .expect("sleep answered");
        assert_eq!(resp.status, 200, "sleep #{i}");
    }
    // Close promptly: an idle keep-alive connection would hit the
    // connection deadline and perturb the exact counter accounting.
    drop(c);

    // Malformed frames: every one gets a well-formed 400, then close.
    for i in 0..MALFORMED {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(format!("XYZZY \x01garbage {i}\r\n\r\n").as_bytes())
            .expect("write garbage");
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("read until close");
        let text = String::from_utf8_lossy(&buf);
        assert!(
            text.starts_with("HTTP/1.1 400"),
            "malformed frame #{i} got {text:?}"
        );
    }

    // Partial writes: abort mid-request; the daemon treats it as EOF.
    for _ in 0..PARTIALS {
        let mut s = TcpStream::connect(&addr).expect("connect");
        let _ = s.write_all(b"POST /v1/experiments HTTP/1.1\r\nContent-Length: 999\r\n\r\n{");
        // dropping the socket aborts the request
    }

    // Slowloris: send a sliver of a request, then go silent. The daemon
    // must cut us off at the connection deadline with a 408 (or just a
    // close) instead of pinning the thread forever. Going silent (vs
    // dribbling past the deadline) means the 408 arrives before any of
    // our writes can race the server's close into a reset.
    let slow_results: Vec<&'static str> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SLOW)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut sock = TcpStream::connect(&addr).expect("connect");
                    sock.set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    sock.write_all(b"POST /v1/experiments HTT")
                        .expect("write sliver");
                    let mut buf = [0u8; 512];
                    match sock.read(&mut buf) {
                        Ok(0) => "close",
                        Ok(n) => {
                            let text = String::from_utf8_lossy(&buf[..n]);
                            assert!(text.starts_with("HTTP/1.1 408"), "slow client got {text:?}");
                            "408"
                        }
                        Err(e) => panic!("daemon never cut off a slowloris client: {e}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    assert_eq!(slow_results.len(), SLOW as usize);

    // Still alive, and the books balance exactly. Aborted connections
    // are processed asynchronously by their connection threads, so poll
    // until the counters converge before asserting exact equality.
    let mut health = Client::connect(&addr).expect("daemon still accepts");
    assert_eq!(health.get("/healthz").expect("healthz").status, 200);
    let expected_parse = MALFORMED + PARTIALS; // truncated requests count as parse
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let m = loop {
        let m = metrics(&addr);
        if error_counter(&m, "parse") >= expected_parse || std::time::Instant::now() > deadline {
            break m;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(counter(&m, "worker_panics"), PANICS + POISONS);
    assert_eq!(counter(&m, "injected_faults"), PANICS + POISONS + SLEEPS);
    assert_eq!(error_counter(&m, "run"), PANICS + POISONS);
    assert_eq!(error_counter(&m, "parse"), expected_parse);
    assert_eq!(counter(&m, "deadline_closes"), SLOW);
    assert_eq!(error_counter(&m, "io"), SLOW);
    assert_eq!(error_counter(&m, "admission"), 0);
    // Each poisoning after the first recovers its predecessor's poison
    // on the way in; the final poisoning is recovered by whichever
    // cache access comes next (possibly after this snapshot was taken).
    assert!(
        counter(&m, "lock_poison_recoveries") >= POISONS - 1,
        "got {}",
        counter(&m, "lock_poison_recoveries")
    );

    // And after all that, the drain contract still holds.
    shutdown_and_join(&handle, join);
}
