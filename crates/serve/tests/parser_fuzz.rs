//! Seeded fuzzing of the daemon's request-parsing surface.
//!
//! The contract under test: no byte sequence a client can put on the
//! wire — garbage bodies, truncated spec prefixes, wrong-shape JSON,
//! half-delivered HTTP frames, oversized declarations — may panic a
//! connection thread or produce anything other than a structured
//! `{"error", "class"}` 4xx. After every barrage the daemon must still
//! answer `/healthz` and account each failure under `errors.parse`.

use csd_serve::{Client, Server, ServerConfig, ShutdownHandle};
use csd_telemetry::{derive_seed, Json, SplitMix64};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn boot() -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 4,
        cache_cap: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn shutdown_and_join(handle: &ShutdownHandle, join: std::thread::JoinHandle<()>) {
    handle.trigger();
    join.join().expect("server exits cleanly after drain");
}

/// Asserts one rejection is structured: expected status, JSON body,
/// `class: "parse"`, non-empty message.
fn assert_parse_reject(status: u16, body: &str, want_status: u16, what: &str) {
    assert_eq!(status, want_status, "{what}: {body}");
    let doc = Json::parse(body)
        .unwrap_or_else(|e| panic!("{what}: rejection body must be JSON ({e}): {body:?}"));
    assert_eq!(
        doc.get("class").and_then(Json::as_str),
        Some("parse"),
        "{what}: {body}"
    );
    assert!(
        doc.get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| !m.is_empty()),
        "{what}: rejection must name a cause: {body}"
    );
}

/// Random bodies (raw bytes, printable soup, and structurally valid but
/// wrong-shape JSON) posted through the well-formed HTTP client: every
/// one must come back as a structured 400, on a connection that stays
/// usable for the next request.
#[test]
fn garbage_bodies_get_structured_400s() {
    let (addr, handle, join) = boot();
    let mut client = Client::connect(&addr).unwrap();
    let mut parse_rejects = 0u64;

    let wrong_shape: &[&str] = &[
        "null",
        "7",
        "[]",
        "\"task\"",
        "{}",
        "{\"task\": 3}",
        "{\"task\": \"table1\", \"profile\": \"bogus\"}",
        "{\"task\": \"table1\", \"seed\": \"not a number\"}",
        "{\"experiment\": []}",
        "{\"experiment\": {\"victim\": 7}}",
        "{\"experiment\": {\"victim\": \"aes-enc\", \"legs\": {}}}",
        "{\"experiment\": {\"victim\": \"aes-enc\", \"stealth\": true, \"watchdog\": -1}}",
    ];
    for (i, body) in wrong_shape.iter().enumerate() {
        let resp = client.post_json("/v1/experiments", body).unwrap();
        assert_parse_reject(
            resp.status,
            &resp.text(),
            400,
            &format!("shape #{i} {body}"),
        );
        parse_rejects += 1;
    }

    let mut rng = SplitMix64::new(derive_seed(0xF0_0D, "serve/garbage"));
    for i in 0..48 {
        let len = 1 + (rng.next_u64() % 64) as usize;
        let body: Vec<u8> = (0..len)
            .map(|_| {
                if i % 2 == 0 {
                    // Printable soup: exercises the JSON lexer proper.
                    b' ' + (rng.next_u64() % 95) as u8
                } else {
                    // Raw bytes: exercises the UTF-8 gate.
                    rng.next_u64() as u8
                }
            })
            .collect();
        let resp = client.request("POST", "/v1/experiments", &body).unwrap();
        assert_parse_reject(
            resp.status,
            &resp.text(),
            400,
            &format!("garbage #{i} {:?}", String::from_utf8_lossy(&body)),
        );
        parse_rejects += 1;
    }

    let ok = client.get("/healthz").unwrap();
    assert_eq!(ok.status, 200, "daemon must survive the barrage");
    let metrics = Json::parse(&client.get("/metrics").unwrap().text()).unwrap();
    assert_eq!(
        metrics
            .get("errors")
            .and_then(|e| e.get("parse"))
            .and_then(Json::as_u64),
        Some(parse_rejects),
        "every rejection must land in the parse error bucket"
    );

    shutdown_and_join(&handle, join);
}

/// Every proper prefix of a valid spec body is malformed JSON and must
/// be rejected with a structured 400; the full body must still run.
#[test]
fn truncated_spec_prefixes_are_rejected_then_full_body_runs() {
    let (addr, handle, join) = boot();
    let mut client = Client::connect(&addr).unwrap();
    let body = "{\"experiment\": {\"victim\": \"aes-enc\", \"blocks\": 2, \"seed\": 11}}";

    for cut in 0..body.len() {
        let prefix = &body[..cut];
        let resp = client.post_json("/v1/experiments", prefix).unwrap();
        assert_parse_reject(
            resp.status,
            &resp.text(),
            400,
            &format!("prefix of length {cut}: {prefix:?}"),
        );
    }

    let full = client.post_json("/v1/experiments", body).unwrap();
    assert_eq!(
        full.status,
        200,
        "untruncated body must run: {}",
        full.text()
    );

    shutdown_and_join(&handle, join);
}

/// Writes raw bytes to a fresh connection, half-closes, and returns the
/// daemon's entire reply (possibly empty if it just hung up).
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(bytes).expect("write raw request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    String::from_utf8_lossy(&reply).into_owned()
}

/// Splits a raw HTTP reply into (status line, body).
fn split_reply(reply: &str) -> (&str, &str) {
    let status = reply.lines().next().unwrap_or("");
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, body)
}

/// Transport-level malice on raw sockets: truncated frames (body shorter
/// than its Content-Length, heads cut off mid-line), non-HTTP garbage,
/// and an oversized Content-Length declaration. Framing faults answer a
/// structured 400, the size cap answers 413, and the daemon stays up.
#[test]
fn raw_truncated_frames_and_oversized_declarations() {
    let (addr, handle, join) = boot();

    // Body shorter than declared: EOF mid-body is a truncated request.
    let reply = raw_exchange(
        &addr,
        b"POST /v1/experiments HTTP/1.1\r\nHost: x\r\nContent-Length: 40\r\n\r\nshort",
    );
    let (status, body) = split_reply(&reply);
    assert!(status.starts_with("HTTP/1.1 400"), "short body: {reply:?}");
    assert_parse_reject(400, body, 400, "short body");

    // Head cut off before the blank line.
    let reply = raw_exchange(&addr, b"POST /v1/experi");
    let (status, body) = split_reply(&reply);
    assert!(status.starts_with("HTTP/1.1 400"), "cut head: {reply:?}");
    assert_parse_reject(400, body, 400, "cut head");

    // Complete head, but not HTTP at all.
    let reply = raw_exchange(&addr, b"NOT-HTTP garbage line\r\n\r\n");
    let (status, body) = split_reply(&reply);
    assert!(status.starts_with("HTTP/1.1 400"), "non-http: {reply:?}");
    assert_parse_reject(400, body, 400, "non-http");

    // Declared body past the 1 MiB cap: refused up front with 413,
    // before the daemon commits to buffering it.
    let reply = raw_exchange(
        &addr,
        b"POST /v1/experiments HTTP/1.1\r\nHost: x\r\nContent-Length: 2097152\r\n\r\n",
    );
    let (status, body) = split_reply(&reply);
    assert!(status.starts_with("HTTP/1.1 413"), "oversized: {reply:?}");
    assert_parse_reject(413, body, 413, "oversized");

    // Seeded binary garbage frames: whatever the bytes, the reply is
    // either a structured 4xx or a clean hang-up — never silence with
    // the listener gone.
    let mut rng = SplitMix64::new(derive_seed(0xF0_0D, "serve/raw"));
    for i in 0..24 {
        let len = 1 + (rng.next_u64() % 256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let reply = raw_exchange(&addr, &bytes);
        let (status, body) = split_reply(&reply);
        assert!(
            status.starts_with("HTTP/1.1 4"),
            "raw garbage #{i} must get a 4xx: {reply:?}"
        );
        assert_parse_reject(400, body, 400, &format!("raw garbage #{i}"));
    }

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let metrics = Json::parse(&client.get("/metrics").unwrap().text()).unwrap();
    let parse_errors = metrics
        .get("errors")
        .and_then(|e| e.get("parse"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(
        parse_errors,
        4 + 24,
        "every framing fault must land in the parse error bucket"
    );

    shutdown_and_join(&handle, join);
}
