//! Session-cache contract: many concurrent plans forking ONE shared
//! warmed checkpoint must each produce the byte-identical document a
//! fresh cold run produces.
//!
//! This is the test that justifies the `EventSink: Send + Sync` bound —
//! a `CoreSnapshot` parked in an `Arc` is read from several threads at
//! once while each forks its own core from it.

use csd_exp::{run_plan, ExperimentSpec, Leg, LegMode};
use csd_serve::SessionCache;
use csd_telemetry::ToJson;
use std::sync::Arc;

fn spec(stealth: bool, watchdog: u64, blocks: usize) -> ExperimentSpec {
    let mode = if stealth {
        LegMode::Stealth { watchdog }
    } else {
        LegMode::Base
    };
    ExperimentSpec {
        victim: "aes-enc".to_string(),
        pipeline: "opt".to_string(),
        seed: 0xF0_87,
        blocks,
        cold: false,
        legs: vec![Leg::new(mode)],
    }
}

#[test]
fn concurrent_forks_of_one_checkpoint_match_fresh_cold_runs() {
    // One shared cache, seeded by a single cold run (the base leg).
    let shared = Arc::new(SessionCache::new(4));
    let seeded = run_plan(&spec(false, 1000, 2), shared.as_ref(), 1).expect("cold run succeeds");
    assert!(!seeded.warm, "first run warms the session");
    assert_eq!(shared.len(), 1);

    // Six variants over the *measured* knobs only — same session key.
    let variants = [
        spec(false, 1000, 2),
        spec(true, 1000, 2),
        spec(true, 2000, 2),
        spec(true, 4000, 2),
        spec(false, 1000, 3),
        spec(true, 2000, 3),
    ];

    // All six fork the one cached checkpoint concurrently.
    let forked: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|v| {
                let cache = Arc::clone(&shared);
                let v = v.clone();
                s.spawn(move || {
                    let result = run_plan(&v, cache.as_ref(), 1).expect("warm fork succeeds");
                    assert!(result.warm, "{v:?} must fork the shared session");
                    result.to_json().pretty()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(shared.len(), 1, "forks must not multiply sessions");

    // Reference: each variant cold, in its own cache, sequentially.
    for (v, warm_bytes) in variants.iter().zip(&forked) {
        let fresh = SessionCache::new(4);
        let cold = run_plan(v, &fresh, 1).expect("cold run succeeds");
        assert!(!cold.warm);
        assert_eq!(
            &cold.to_json().pretty(),
            warm_bytes,
            "warm fork of {v:?} must be byte-identical to a fresh cold run"
        );
    }
}

#[test]
fn distinct_session_keys_do_not_collide() {
    // Different victim / pipeline / seed → different sessions, and a
    // fork under one key never reuses another key's checkpoint.
    let cache = SessionCache::new(8);
    let a = spec(false, 1000, 2);
    let mut b = a.clone();
    b.seed ^= 1;
    let mut c = a.clone();
    c.pipeline = "noopt".to_string();

    let ra = run_plan(&a, &cache, 1).expect("run succeeds");
    let rb = run_plan(&b, &cache, 1).expect("run succeeds");
    let rc = run_plan(&c, &cache, 1).expect("run succeeds");
    assert!(!rb.warm && !rc.warm, "new keys must run cold");
    assert_eq!(cache.len(), 3);
    assert_ne!(
        ra.to_json().pretty(),
        rb.to_json().pretty(),
        "seed is part of the session"
    );
    assert_ne!(
        ra.to_json().pretty(),
        rc.to_json().pretty(),
        "pipeline is part of the session"
    );

    // And each key's warm fork still matches its own cold bytes.
    let again_a = run_plan(&a, &cache, 1).expect("run succeeds");
    assert!(again_a.warm);
    assert_eq!(ra.to_json().pretty(), again_a.to_json().pretty());
}

#[test]
fn one_multi_leg_plan_forks_every_leg_from_one_warmup() {
    // A single plan with many legs must warm exactly once, measure every
    // leg, and agree byte-for-byte with the same legs run as separate
    // single-leg plans against the same cache.
    let cache = SessionCache::new(4);
    let multi = ExperimentSpec {
        victim: "aes-enc".to_string(),
        pipeline: "opt".to_string(),
        seed: 0xF0_87,
        blocks: 2,
        cold: false,
        legs: vec![
            Leg::new(LegMode::Base),
            Leg::new(LegMode::Stealth { watchdog: 1000 }),
            Leg::new(LegMode::Stealth { watchdog: 4000 }),
        ],
    };
    let result = run_plan(&multi, &cache, 2).expect("plan succeeds");
    assert_eq!(result.legs.len(), 3);
    assert_eq!(cache.len(), 1, "one plan, one session");
    assert_eq!(
        (cache.hits(), cache.misses()),
        (0, 1),
        "a multi-leg plan warms once, not per leg"
    );

    for (leg, single) in multi.legs.iter().zip(0..) {
        let one = ExperimentSpec {
            legs: vec![leg.clone()],
            ..multi.clone()
        };
        let solo = run_plan(&one, &cache, 1).expect("single-leg plan succeeds");
        assert!(solo.warm, "single-leg re-runs fork the parked session");
        assert_eq!(
            solo.legs[0], result.legs[single],
            "leg {single} must match its single-leg twin exactly"
        );
    }
}
