//! Session-cache contract: many concurrent requests forking ONE shared
//! warmed checkpoint must each produce the byte-identical document a
//! fresh cold run produces.
//!
//! This is the test that justifies the `EventSink: Send + Sync` bound —
//! a `CoreSnapshot` parked in an `Arc` is read from several threads at
//! once while each forks its own core from it.

use csd_serve::{ExperimentSpec, SessionCache};
use std::sync::Arc;

fn spec(stealth: bool, watchdog: u64, blocks: usize) -> ExperimentSpec {
    ExperimentSpec {
        victim: "aes-enc".to_string(),
        pipeline: "opt".to_string(),
        stealth,
        watchdog,
        blocks,
        seed: 0xF0_87,
        cold: false,
    }
}

#[test]
fn concurrent_forks_of_one_checkpoint_match_fresh_cold_runs() {
    // One shared cache, seeded by a single cold run (the base leg).
    let shared = Arc::new(SessionCache::new(4));
    let (_, warm_hit) = spec(false, 1000, 2)
        .run(&shared)
        .expect("cold run succeeds");
    assert!(!warm_hit, "first run warms the session");
    assert_eq!(shared.len(), 1);

    // Six variants over the *measured* knobs only — same session key.
    let variants = [
        spec(false, 1000, 2),
        spec(true, 1000, 2),
        spec(true, 2000, 2),
        spec(true, 4000, 2),
        spec(false, 1000, 3),
        spec(true, 2000, 3),
    ];

    // All six fork the one cached checkpoint concurrently.
    let forked: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|v| {
                let cache = Arc::clone(&shared);
                let v = v.clone();
                s.spawn(move || {
                    let (doc, warm_hit) = v.run(&cache).expect("warm fork succeeds");
                    assert!(warm_hit, "{v:?} must fork the shared session");
                    doc.pretty()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(shared.len(), 1, "forks must not multiply sessions");

    // Reference: each variant cold, in its own cache, sequentially.
    for (v, warm_bytes) in variants.iter().zip(&forked) {
        let fresh = SessionCache::new(4);
        let (cold_doc, warm_hit) = v.run(&fresh).expect("cold run succeeds");
        assert!(!warm_hit);
        assert_eq!(
            &cold_doc.pretty(),
            warm_bytes,
            "warm fork of {v:?} must be byte-identical to a fresh cold run"
        );
    }
}

#[test]
fn distinct_session_keys_do_not_collide() {
    // Different victim / pipeline / seed → different sessions, and a
    // fork under one key never reuses another key's checkpoint.
    let cache = SessionCache::new(8);
    let a = spec(false, 1000, 2);
    let mut b = a.clone();
    b.seed ^= 1;
    let mut c = a.clone();
    c.pipeline = "noopt".to_string();

    let (doc_a, _) = a.run(&cache).expect("run succeeds");
    let (doc_b, hit_b) = b.run(&cache).expect("run succeeds");
    let (doc_c, hit_c) = c.run(&cache).expect("run succeeds");
    assert!(!hit_b && !hit_c, "new keys must run cold");
    assert_eq!(cache.len(), 3);
    assert_ne!(
        doc_a.pretty(),
        doc_b.pretty(),
        "seed is part of the session"
    );
    assert_ne!(
        doc_a.pretty(),
        doc_c.pretty(),
        "pipeline is part of the session"
    );

    // And each key's warm fork still matches its own cold bytes.
    let (again_a, hit_a) = a.run(&cache).expect("run succeeds");
    assert!(hit_a);
    assert_eq!(doc_a.pretty(), again_a.pretty());
}
